/// \file
/// Tests for the runtime thread pool: coverage, ordering guarantees,
/// exception propagation, nested batches and the serial fallback.

#include "runtime/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace chrysalis::runtime {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne)
{
    EXPECT_GE(hardware_threads(), 1);
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareThreads)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), hardware_threads());
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(pool.stats().batches, 0u);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInIndexOrder)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;  // no mutex: must stay single-threaded
    pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.inline_batches, 1u);
    EXPECT_EQ(stats.tasks, 16u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> visits(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(visits[i].load(), 1) << i;
    EXPECT_EQ(pool.stats().tasks, kCount);
}

TEST(ThreadPoolTest, ParallelMapIsIndexOrdered)
{
    ThreadPool pool(4);
    const auto squares =
        pool.parallel_map(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(64,
                                   [](std::size_t i) {
                                       if (i == 13)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsUsableAfterAnException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(
                     8, [](std::size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    std::atomic<int> done{0};
    pool.parallel_for(32, [&](std::size_t) {
        done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ExceptionOnSerialFallbackPropagates)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallel_for(
                     4, [](std::size_t) { throw std::runtime_error("s"); }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForOnSamePoolCompletes)
{
    ThreadPool pool(4);
    std::atomic<int> leaves{0};
    pool.parallel_for(8, [&](std::size_t) {
        // Inside a pool task: must run inline, not deadlock on the queue.
        EXPECT_TRUE(ThreadPool::on_pool_thread());
        pool.parallel_for(8, [&](std::size_t) {
            leaves.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, NestedBatchOnADifferentPoolRunsInline)
{
    ThreadPool outer(4);
    std::atomic<int> leaves{0};
    outer.parallel_for(4, [&](std::size_t) {
        ThreadPool inner(4);
        inner.parallel_for(16, [&](std::size_t) {
            leaves.fetch_add(1, std::memory_order_relaxed);
        });
        // Every inner batch must have taken the inline path.
        EXPECT_EQ(inner.stats().inline_batches, inner.stats().batches);
    });
    EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, ManyBatchesReuseTheSamePool)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallel_for(20, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 1000u);
    EXPECT_EQ(pool.stats().batches, 50u);
    EXPECT_EQ(pool.stats().tasks, 1000u);
}

TEST(ThreadPoolTest, ParallelSummationMatchesSerial)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    const auto terms = pool.parallel_map(
        kCount, [](std::size_t i) { return static_cast<double>(i) * 0.5; });
    const double parallel_sum =
        std::accumulate(terms.begin(), terms.end(), 0.0);
    double serial_sum = 0.0;
    for (std::size_t i = 0; i < kCount; ++i)
        serial_sum += static_cast<double>(i) * 0.5;
    // Index-ordered reduction: bit-identical, not merely approximate.
    EXPECT_EQ(parallel_sum, serial_sum);
}

TEST(ThreadPoolDeathTest, NegativeThreadCountIsFatal)
{
    EXPECT_EXIT(ThreadPool(-1), ::testing::ExitedWithCode(1),
                "thread count");
}

}  // namespace
}  // namespace chrysalis::runtime

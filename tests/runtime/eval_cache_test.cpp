/// \file
/// Tests for the sharded LRU evaluation cache: hit/miss accounting,
/// eviction order, get_or_compute semantics and cross-thread consistency.

#include "runtime/eval_cache.hpp"

#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "runtime/thread_pool.hpp"

namespace chrysalis::runtime {
namespace {

CacheKey
key_of(std::uint64_t value)
{
    StableHash hash;
    hash.add(value);
    return hash.key();
}

TEST(EvalCacheTest, MissThenHit)
{
    EvalCache<int> cache(16);
    const CacheKey key = key_of(1);
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.insert(key, 42);
    const auto cached = cache.lookup(key);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(*cached, 42);

    const EvalCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(EvalCacheTest, GetOrComputeComputesExactlyOnceOnRepeats)
{
    EvalCache<int> cache(16);
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return 7;
    };
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(cache.get_or_compute(key_of(9), compute), 7);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(cache.stats().hits, 4u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(EvalCacheTest, InsertRefreshesExistingKey)
{
    EvalCache<int> cache(16);
    cache.insert(key_of(1), 10);
    cache.insert(key_of(1), 20);
    EXPECT_EQ(*cache.lookup(key_of(1)), 20);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);  // refresh, not re-insert
}

TEST(EvalCacheTest, LruEvictionDropsColdestEntry)
{
    // Single shard so the LRU order is global and observable.
    EvalCache<int> cache(2, 1);
    cache.insert(key_of(1), 1);
    cache.insert(key_of(2), 2);
    (void)cache.lookup(key_of(1));  // make key 1 the warmest
    cache.insert(key_of(3), 3);     // evicts key 2

    EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
    EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
    EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(EvalCacheTest, CapacityIsBoundedUnderChurn)
{
    EvalCache<int> cache(32, 4);
    for (std::uint64_t i = 0; i < 1000; ++i)
        cache.insert(key_of(i), static_cast<int>(i));
    EXPECT_LE(cache.stats().entries, cache.capacity());
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(EvalCacheTest, ClearDropsEntriesButKeepsCounters)
{
    EvalCache<int> cache(16);
    cache.insert(key_of(1), 1);
    (void)cache.lookup(key_of(1));
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
}

TEST(EvalCacheTest, StatsDescribeMentionsHitRate)
{
    EvalCache<int> cache(16);
    cache.insert(key_of(1), 1);
    (void)cache.lookup(key_of(1));
    (void)cache.lookup(key_of(2));
    const std::string text = cache.stats().describe();
    EXPECT_NE(text.find("hits=1"), std::string::npos);
    EXPECT_NE(text.find("misses=1"), std::string::npos);
    EXPECT_NE(text.find("50.0%"), std::string::npos);
}

TEST(EvalCacheTest, StatsDeltaSubtractsCounters)
{
    EvalCache<int> cache(16);
    cache.insert(key_of(1), 1);
    (void)cache.lookup(key_of(1));
    const EvalCacheStats before = cache.stats();
    (void)cache.lookup(key_of(1));
    (void)cache.lookup(key_of(2));
    const EvalCacheStats delta = cache.stats() - before;
    EXPECT_EQ(delta.hits, 1u);
    EXPECT_EQ(delta.misses, 1u);
}

TEST(EvalCacheTest, CrossThreadConsistency)
{
    // Hammer a small key set from every pool thread; every returned
    // value must match the key it was computed from, and the resident
    // set must respect capacity. Capacity exceeds the key set, so most
    // lookups after the first pass are hits.
    EvalCache<std::uint64_t> cache(256, 8);
    ThreadPool pool(4);
    std::atomic<int> mismatches{0};
    pool.parallel_for(2000, [&](std::size_t i) {
        const std::uint64_t id = i % 100;
        const std::uint64_t value = cache.get_or_compute(
            key_of(id), [id] { return id * 31; });
        if (value != id * 31)
            mismatches.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(mismatches.load(), 0);
    const EvalCacheStats stats = cache.stats();
    EXPECT_LE(stats.entries, cache.capacity());
    EXPECT_GT(stats.hits, 0u);
    // Every lookup either hit or missed; racing duplicate computes are
    // allowed, so misses may exceed distinct keys but totals must add up.
    EXPECT_EQ(stats.hits + stats.misses, 2000u);
}

}  // namespace
}  // namespace chrysalis::runtime

/// \file
/// Randomized property harness: generate structurally valid random models
/// and check that the whole analysis stack (shape accounting, mapping
/// enumeration, cost model, analytic evaluation, simulation) upholds its
/// invariants on all of them — not just the hand-written zoo.

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/cost_model.hpp"
#include "dataflow/tiling.hpp"
#include "dnn/model_io.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"
#include "sim/analytic_evaluator.hpp"

namespace chrysalis {
namespace {

/// Generates a random, structurally valid model of 2-8 layers.
dnn::Model
random_model(Rng& rng)
{
    const std::int64_t in_c = rng.uniform_int(1, 8);
    const std::int64_t in_hw = rng.uniform_int(8, 48);
    dnn::Model model("random", {in_c, in_hw, in_hw},
                     rng.bernoulli(0.5) ? 1 : 2);

    std::int64_t c = in_c;
    std::int64_t size = in_hw;
    const int layers = static_cast<int>(rng.uniform_int(2, 7));
    for (int i = 0; i < layers; ++i) {
        std::ostringstream name_stream;
        name_stream << "l" << i;
        const std::string name = name_stream.str();
        switch (rng.uniform_int(0, 3)) {
          case 0: {  // conv
            const std::int64_t k = rng.uniform_int(2, 32);
            const std::int64_t kernel =
                std::min<std::int64_t>(rng.uniform_int(1, 5), size);
            model.add_layer(dnn::make_conv2d(name, c, k, size, size,
                                             kernel, 1, kernel / 2));
            c = k;
            size = (size + 2 * (kernel / 2) - kernel) + 1;
            break;
          }
          case 1: {  // pool, only if it still fits
            if (size >= 4) {
                model.add_layer(
                    dnn::make_pool(name, c, size, size, 2, 2));
                size = (size - 2) / 2 + 1;
            } else {
                model.add_layer(dnn::make_dense(name, c * size * size,
                                                rng.uniform_int(2, 32)));
                return model;  // dense flattens; stop here
            }
            break;
          }
          case 2: {  // depthwise
            const std::int64_t kernel =
                std::min<std::int64_t>(3, size);
            model.add_layer(dnn::make_depthwise(name, c, size, size,
                                                kernel, 1, kernel / 2));
            size = (size + 2 * (kernel / 2) - kernel) + 1;
            break;
          }
          default: {  // dense tail
            model.add_layer(dnn::make_dense(name, c * size * size,
                                            rng.uniform_int(2, 64)));
            return model;
          }
        }
    }
    return model;
}

class RandomModelTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomModelTest, AnalysisStackInvariantsHold)
{
    Rng rng(GetParam());
    const dnn::Model model = random_model(rng);

    // Accounting invariants.
    EXPECT_GE(model.total_params(), 0);
    EXPECT_GE(model.total_flops(), model.total_macs());
    EXPECT_GT(model.peak_activation_bytes(), 0);

    // Serialization round-trips.
    std::istringstream in(dnn::model_to_string(model));
    const dnn::Model parsed = dnn::parse_model(in);
    EXPECT_EQ(parsed.total_macs(), model.total_macs());
    EXPECT_EQ(parsed.total_params(), model.total_params());

    // Cost model: every enumerated mapping of every layer produces
    // consistent, non-negative costs.
    const hw::Msp430Lea mcu;
    const auto params = mcu.cost_params();
    for (std::size_t i = 0; i < model.layer_count(); ++i) {
        const auto mappings = dataflow::enumerate_mappings(
            model.layer(i), mcu.supported_dataflows(), 4);
        ASSERT_FALSE(mappings.empty());
        for (const auto& mapping : mappings) {
            const auto cost =
                dataflow::analyze_layer(model.layer(i), mapping, params);
            EXPECT_GE(cost.e_compute_j, 0.0);
            EXPECT_GE(cost.e_nvm_j, 0.0);
            EXPECT_GT(cost.time_s, 0.0);
            EXPECT_GE(cost.ckpt_bytes, 0);
            EXPECT_NEAR(cost.tile_energy_j() *
                            static_cast<double>(cost.n_tile),
                        cost.total_energy_j(),
                        cost.total_energy_j() * 1e-9 + 1e-18);
        }
    }

    // Mapping search + analytic evaluation do not crash and produce a
    // consistent verdict.
    sim::EnergyEnv env;
    env.p_eh_w = rng.uniform(1e-3, 40e-3);
    env.capacitor.capacitance_f = rng.log_uniform(10e-6, 5e-3);
    search::MappingSearchOptions options;
    options.max_candidates_per_dim = 4;
    const auto result =
        search::search_mappings(model, mcu, {env}, options);
    EXPECT_EQ(result.mappings.size(), model.layer_count());
    const auto eval = sim::analytic_evaluate(result.cost, env);
    if (result.feasible) {
        // A search-feasible plan must be analytically runnable too.
        EXPECT_TRUE(eval.feasible) << eval.failure.message();
        EXPECT_GT(eval.latency_s, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace chrysalis

/// \file
/// Cross-module integration tests: full pipelines from workload through
/// exploration to step-simulated validation, plus the paper's headline
/// qualitative claims at reduced search budgets.

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "core/chrysalis.hpp"
#include "dnn/model_zoo.hpp"
#include "energy/solar_environment.hpp"

namespace chrysalis {
namespace {

search::ExplorerOptions
budget(std::uint64_t seed, int pop = 12, int gens = 6)
{
    search::ExplorerOptions options;
    options.outer.population = pop;
    options.outer.generations = gens;
    options.outer.seed = seed;
    options.inner.max_candidates_per_dim = 4;
    return options;
}

TEST(EndToEndTest, MspPipelineForEveryTableIvWorkload)
{
    for (const auto& name : dnn::table4_workloads()) {
        core::ChrysalisInputs inputs{
            dnn::make_model(name),
            search::DesignSpace::existing_aut(),
            search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
            budget(1000 + static_cast<std::uint64_t>(name.size())),
        };
        const core::Chrysalis tool(std::move(inputs));
        const core::AuTSolution solution = tool.generate();
        EXPECT_TRUE(solution.feasible) << name;
        EXPECT_GT(solution.mean_latency_s, 0.0) << name;
    }
}

TEST(EndToEndTest, AcceleratorPipelineForEveryTableVWorkload)
{
    for (const auto& name : dnn::table5_workloads()) {
        core::ChrysalisInputs inputs{
            dnn::make_model(name),
            search::DesignSpace::future_aut(),
            search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
            budget(2024 + name.size()),
        };
        const core::Chrysalis tool(std::move(inputs));
        const core::AuTSolution solution = tool.generate();
        ASSERT_TRUE(solution.feasible) << name;
        EXPECT_GE(solution.hardware.n_pe, 1) << name;
        EXPECT_LE(solution.hardware.n_pe, 168) << name;
        EXPECT_GE(solution.hardware.cache_bytes, 128) << name;
        EXPECT_LE(solution.hardware.cache_bytes, 2048) << name;
        EXPECT_GT(solution.mean_latency_s, 0.0) << name;
    }
}

TEST(EndToEndTest, MobilenetExtensionRunsOnBothSetups)
{
    // The depthwise-separable extension workload must survive both the
    // future-AuT accelerator pipeline and the step simulator.
    core::ChrysalisInputs inputs{
        dnn::make_mobilenet_tiny(),
        search::DesignSpace::future_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        budget(555),
    };
    const core::Chrysalis tool(std::move(inputs));
    const core::AuTSolution solution = tool.generate();
    ASSERT_TRUE(solution.feasible);
    const auto validation =
        tool.validate(solution, /*k_eh=*/2e-3, sim::SimConfig{}, 4);
    EXPECT_TRUE(validation.sim.completed)
        << validation.sim.failure.message();
}

TEST(EndToEndTest, SearchedDesignBeatsIdleDefaults)
{
    // The central claim: searching the joint space improves on the frozen
    // default configuration for the same workload and objective.
    core::ChrysalisInputs inputs{
        dnn::make_har_cnn(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        budget(31, 16, 8),
    };
    const core::Chrysalis tool(std::move(inputs));
    const core::AuTSolution best = tool.generate();
    const core::AuTSolution reference =
        tool.evaluate_candidate(tool.inputs().space.defaults);
    ASSERT_TRUE(best.feasible);
    ASSERT_TRUE(reference.feasible);
    EXPECT_LE(best.score, reference.score);
    EXPECT_GT(relative_improvement(reference.score, best.score), 0.0);
}

TEST(EndToEndTest, SolutionSurvivesStepSimulationInBothEnvironments)
{
    core::ChrysalisInputs inputs{
        dnn::make_kws_mlp(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        budget(47),
    };
    const core::Chrysalis tool(std::move(inputs));
    const core::AuTSolution solution = tool.generate();
    ASSERT_TRUE(solution.feasible);
    for (double k_eh : tool.inputs().options.k_eh_envs) {
        const auto validation = tool.validate(solution, k_eh,
                                              sim::SimConfig{}, 6);
        EXPECT_TRUE(validation.sim.completed)
            << "k_eh=" << k_eh << ": "
            << validation.sim.failure.message();
    }
}

TEST(EndToEndTest, ObjectivesProduceDifferentDesignPoints)
{
    const dnn::Model model = dnn::make_cifar10_cnn();
    const auto run = [&](search::Objective objective,
                         std::uint64_t seed) {
        core::ChrysalisInputs inputs{model,
                                     search::DesignSpace::existing_aut(),
                                     objective, budget(seed, 16, 8)};
        return core::Chrysalis(std::move(inputs)).generate();
    };
    const auto lat = run({search::ObjectiveKind::kLatency, 10.0, 0.0},
                         61);
    const auto sp = run({search::ObjectiveKind::kSolarPanel, 0.0, 60.0},
                        61);
    ASSERT_TRUE(lat.feasible);
    ASSERT_TRUE(sp.feasible);
    // Latency-first buys a panel near its budget; panel-first shrinks it.
    EXPECT_GT(lat.hardware.solar_cm2, sp.hardware.solar_cm2);
    EXPECT_LE(lat.hardware.solar_cm2, 10.0 + 1e-9);
    EXPECT_LE(sp.mean_latency_s, 60.0 + 1e-9);
}

TEST(EndToEndTest, DiurnalEnvironmentDrivesRepeatedInference)
{
    // Run the simulator against a diurnal trace to exercise the
    // time-varying k_eh path end to end.
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;
    std::vector<dataflow::LayerMapping> mappings(model.layer_count());
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        mappings[i].tiles_k = 4;
        mappings[i].clamp_to(model.layer(i));
    }
    const auto cost =
        dataflow::analyze_model(model, mappings, mcu.cost_params());

    energy::DiurnalSolarEnvironment::Config env_config;
    env_config.cloud_depth = 0.3;
    energy::Capacitor::Config cap;
    cap.capacitance_f = 470e-6;
    cap.initial_voltage_v = 3.5;
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            10.0, std::make_shared<energy::DiurnalSolarEnvironment>(
                      env_config)),
        energy::Capacitor(cap),
        energy::PowerManagementIc{energy::PowerManagementIc::Config{}});

    sim::SimConfig config;
    config.start_time_s = 9.0 * 3600;  // 9am
    config.step_s = 0.05;
    const auto results =
        sim::simulate_repeated(cost, controller, config, 4);
    for (const auto& result : results)
        EXPECT_TRUE(result.completed) << result.failure.message();
}

}  // namespace
}  // namespace chrysalis

/// \file
/// Tests for data-defined hardware (the §III-D substitution hook).

#include "hw/custom_hardware.hpp"

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "search/mapping_search.hpp"

namespace chrysalis::hw {
namespace {

dataflow::CostParams
crossbar_params()
{
    // A ReRAM-crossbar-flavoured accelerator (ResiRCA-style): extremely
    // cheap MACs, modest throughput, expensive writes.
    dataflow::CostParams params;
    params.e_mac_j = 0.5e-12;
    params.macs_per_s_per_pe = 5e7;
    params.n_pe = 32;
    params.vm_bytes_per_pe = 256;
    params.e_vm_byte_j = 2e-12;
    params.e_nvm_read_byte_j = 50e-12;
    params.e_nvm_write_byte_j = 500e-12;
    params.nvm_bytes_per_s = 2e8;
    params.element_bytes = 1;
    return params;
}

TEST(CustomHardwareTest, ExposesSuppliedParameters)
{
    const CustomHardware hardware(
        "reram-crossbar", crossbar_params(),
        {dataflow::Dataflow::kWeightStationary});
    EXPECT_EQ(hardware.name(), "reram-crossbar");
    EXPECT_EQ(hardware.cost_params().n_pe, 32);
    EXPECT_EQ(hardware.supported_dataflows().size(), 1u);
    EXPECT_GT(hardware.active_power_w(), 0.0);
}

TEST(CustomHardwareTest, WorksWithTheMappingSearch)
{
    const CustomHardware hardware(
        "reram-crossbar", crossbar_params(),
        {dataflow::Dataflow::kWeightStationary,
         dataflow::Dataflow::kOutputStationary});
    const auto model = dnn::make_kws_mlp();
    sim::EnergyEnv env;
    env.p_eh_w = 10e-3;
    const auto result = search::search_mappings(
        model, hardware, {env}, search::MappingSearchOptions{});
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.mappings.size(), model.layer_count());
}

TEST(CustomHardwareTest, CloneIsEquivalent)
{
    const CustomHardware hardware(
        "x", crossbar_params(), {dataflow::Dataflow::kRowStationary});
    const auto copy = hardware.clone();
    EXPECT_EQ(copy->name(), "x");
    EXPECT_DOUBLE_EQ(copy->cost_params().e_mac_j, 0.5e-12);
}

TEST(CustomHardwareDeathTest, ValidatesInputs)
{
    auto params = crossbar_params();
    EXPECT_EXIT(CustomHardware("", params,
                               {dataflow::Dataflow::kRowStationary}),
                ::testing::ExitedWithCode(1), "name");
    EXPECT_EXIT(CustomHardware("x", params, {}),
                ::testing::ExitedWithCode(1), "dataflow");
    params.macs_per_s_per_pe = 0.0;
    EXPECT_EXIT(CustomHardware("x", params,
                               {dataflow::Dataflow::kRowStationary}),
                ::testing::ExitedWithCode(1), "throughput");
    params = crossbar_params();
    params.e_mac_j = -1.0;
    EXPECT_EXIT(CustomHardware("x", params,
                               {dataflow::Dataflow::kRowStationary}),
                ::testing::ExitedWithCode(1), "energies");
}

}  // namespace
}  // namespace chrysalis::hw

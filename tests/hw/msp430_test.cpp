/// \file
/// Tests for the MSP430FR5994+LEA hardware model.

#include "hw/msp430_lea.hpp"

#include <gtest/gtest.h>

namespace chrysalis::hw {
namespace {

TEST(Msp430Test, CostParamsReflectPlatform)
{
    const Msp430Lea mcu;
    const auto params = mcu.cost_params();
    EXPECT_EQ(params.n_pe, 1);
    EXPECT_EQ(params.vm_bytes_per_pe, 8 * 1024);   // 8 KiB SRAM
    EXPECT_EQ(params.element_bytes, 2);            // 16-bit fixed point
    EXPECT_FALSE(params.overlap_transfers);        // MCU serializes
    EXPECT_GT(params.e_nvm_write_byte_j, params.e_nvm_read_byte_j);
}

TEST(Msp430Test, FramCapacity)
{
    const Msp430Lea mcu;
    EXPECT_EQ(mcu.fram_bytes(), 256 * 1024);
}

TEST(Msp430Test, SupportsLeaDataflows)
{
    const Msp430Lea mcu;
    const auto dataflows = mcu.supported_dataflows();
    EXPECT_EQ(dataflows.size(), 2u);
    EXPECT_EQ(dataflows[0], dataflow::Dataflow::kWeightStationary);
}

TEST(Msp430Test, ActivePowerIsMilliwattClass)
{
    const Msp430Lea mcu;
    // The platform draws single-digit milliwatts when computing.
    EXPECT_GT(mcu.active_power_w(), 1e-3);
    EXPECT_LT(mcu.active_power_w(), 20e-3);
}

TEST(Msp430Test, CloneIsEquivalent)
{
    Msp430Lea::Config config;
    config.e_mac_j = 9e-9;
    const Msp430Lea mcu(config);
    const auto copy = mcu.clone();
    EXPECT_EQ(copy->name(), "msp430fr5994");
    EXPECT_DOUBLE_EQ(copy->cost_params().e_mac_j, 9e-9);
}

TEST(Msp430Test, DescribeMentionsKeyFacts)
{
    const Msp430Lea mcu;
    const std::string text = mcu.describe();
    EXPECT_NE(text.find("msp430fr5994"), std::string::npos);
    EXPECT_NE(text.find("1 PE"), std::string::npos);
}

TEST(Msp430DeathTest, RejectsBadConfig)
{
    Msp430Lea::Config config;
    config.macs_per_s = 0.0;
    EXPECT_EXIT(Msp430Lea{config}, ::testing::ExitedWithCode(1),
                "throughput");
    config = Msp430Lea::Config{};
    config.sram_bytes = 100;
    EXPECT_EXIT(Msp430Lea{config}, ::testing::ExitedWithCode(1), "SRAM");
}

}  // namespace
}  // namespace chrysalis::hw

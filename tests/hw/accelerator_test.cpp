/// \file
/// Tests for the reconfigurable TPU/Eyeriss accelerator model.

#include "hw/accelerator.hpp"

#include <gtest/gtest.h>

namespace chrysalis::hw {
namespace {

TEST(AcceleratorTest, ArchNamesRoundTrip)
{
    EXPECT_EQ(to_string(AcceleratorArch::kTpu), "tpu");
    EXPECT_EQ(to_string(AcceleratorArch::kEyeriss), "eyeriss");
    EXPECT_EQ(accelerator_arch_from_string("TPU"), AcceleratorArch::kTpu);
    EXPECT_EQ(accelerator_arch_from_string("Eyeriss"),
              AcceleratorArch::kEyeriss);
}

TEST(AcceleratorDeathTest, UnknownArchIsFatal)
{
    EXPECT_EXIT(accelerator_arch_from_string("npu"),
                ::testing::ExitedWithCode(1), "unknown architecture");
}

TEST(AcceleratorTest, ConfigPropagatesToCostParams)
{
    ReconfigurableAccelerator::Config config;
    config.arch = AcceleratorArch::kTpu;
    config.n_pe = 64;
    config.cache_bytes_per_pe = 1024;
    const ReconfigurableAccelerator accel(config);
    const auto params = accel.cost_params();
    EXPECT_EQ(params.n_pe, 64);
    EXPECT_EQ(params.vm_bytes_per_pe, 1024);
    EXPECT_EQ(params.element_bytes, 1);  // int8
    EXPECT_TRUE(params.overlap_transfers);
    EXPECT_EQ(accel.name(), "tpu");
}

TEST(AcceleratorTest, PresetsDiffer)
{
    ReconfigurableAccelerator::Config config;
    config.arch = AcceleratorArch::kTpu;
    const auto tpu = ReconfigurableAccelerator(config).cost_params();
    config.arch = AcceleratorArch::kEyeriss;
    const auto eyeriss = ReconfigurableAccelerator(config).cost_params();
    // TPU: cheaper/faster MACs; Eyeriss: cheaper local buffers.
    EXPECT_LT(tpu.e_mac_j, eyeriss.e_mac_j);
    EXPECT_GT(tpu.macs_per_s_per_pe, eyeriss.macs_per_s_per_pe);
    EXPECT_GT(tpu.e_vm_byte_j, eyeriss.e_vm_byte_j);
}

TEST(AcceleratorTest, EyerissSupportsRowStationary)
{
    ReconfigurableAccelerator::Config config;
    config.arch = AcceleratorArch::kEyeriss;
    const ReconfigurableAccelerator accel(config);
    const auto dataflows = accel.supported_dataflows();
    EXPECT_EQ(dataflows.front(), dataflow::Dataflow::kRowStationary);
    EXPECT_EQ(dataflows.size(), 4u);
}

TEST(AcceleratorTest, TpuIsSystolicSubset)
{
    ReconfigurableAccelerator::Config config;
    config.arch = AcceleratorArch::kTpu;
    const ReconfigurableAccelerator accel(config);
    EXPECT_EQ(accel.supported_dataflows().size(), 2u);
}

class PeRangeTest : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(PeRangeTest, TableVRangeIsAccepted)
{
    ReconfigurableAccelerator::Config config;
    config.n_pe = GetParam();
    EXPECT_NO_FATAL_FAILURE(ReconfigurableAccelerator{config});
}

INSTANTIATE_TEST_SUITE_P(TableV, PeRangeTest,
                         ::testing::Values(1, 2, 16, 64, 128, 168));

TEST(AcceleratorTest, ActivePowerScalesWithPeCount)
{
    ReconfigurableAccelerator::Config config;
    config.n_pe = 8;
    const double small =
        ReconfigurableAccelerator(config).active_power_w();
    config.n_pe = 128;
    const double large =
        ReconfigurableAccelerator(config).active_power_w();
    EXPECT_GT(large, small * 10.0);
}

TEST(AcceleratorDeathTest, RejectsOutOfRangeConfigs)
{
    ReconfigurableAccelerator::Config config;
    config.n_pe = 0;
    EXPECT_EXIT(ReconfigurableAccelerator{config},
                ::testing::ExitedWithCode(1), "PE count");
    config = ReconfigurableAccelerator::Config{};
    config.n_pe = 169;
    EXPECT_EXIT(ReconfigurableAccelerator{config},
                ::testing::ExitedWithCode(1), "PE count");
    config = ReconfigurableAccelerator::Config{};
    config.cache_bytes_per_pe = 64;
    EXPECT_EXIT(ReconfigurableAccelerator{config},
                ::testing::ExitedWithCode(1), "cache size");
    config = ReconfigurableAccelerator::Config{};
    config.cache_bytes_per_pe = 4096;
    EXPECT_EXIT(ReconfigurableAccelerator{config},
                ::testing::ExitedWithCode(1), "cache size");
}

}  // namespace
}  // namespace chrysalis::hw

/// \file
/// Calibration tests against the published Figure 2(a) rows: the MSP430
/// running the MNIST CNN (~1447 ms, ~7.5 mW) and Eyeriss V1 running
/// AlexNet (~115 ms, ~278 mW), both in the non-intermittent (continuous
/// power) condition. These anchor the hardware models to the paper's
/// motivation numbers; tolerances are generous because the paper's rows
/// are themselves approximate platform measurements.

#include <gtest/gtest.h>

#include "dataflow/cost_model.hpp"
#include "dnn/model_zoo.hpp"
#include "hw/accelerator.hpp"
#include "hw/msp430_lea.hpp"

namespace chrysalis::hw {
namespace {

TEST(CalibrationTest, Msp430MnistLatencyNearPaper)
{
    const Msp430Lea mcu;
    const auto model = dnn::make_mnist_cnn();
    const auto cost = dataflow::analyze_model_untiled(
        model, dataflow::Dataflow::kWeightStationary, mcu.cost_params());
    ASSERT_TRUE(cost.feasible);
    // Fig. 2(a): 1447 ms per input.
    EXPECT_NEAR(cost.time_s, 1.447, 1.447 * 0.35);
}

TEST(CalibrationTest, Msp430MnistPowerNearPaper)
{
    const Msp430Lea mcu;
    const auto model = dnn::make_mnist_cnn();
    const auto cost = dataflow::analyze_model_untiled(
        model, dataflow::Dataflow::kWeightStationary, mcu.cost_params());
    const double avg_power = cost.total_energy_j() / cost.time_s;
    // Fig. 2(a): 7.5 mW.
    EXPECT_NEAR(avg_power, 7.5e-3, 7.5e-3 * 0.4);
}

TEST(CalibrationTest, EyerissAlexNetLatencyNearPaper)
{
    ReconfigurableAccelerator::Config config;
    config.arch = AcceleratorArch::kEyeriss;
    config.n_pe = 168;
    config.cache_bytes_per_pe = 512;
    const ReconfigurableAccelerator accel(config);
    const auto model = dnn::make_alexnet();
    const auto cost = dataflow::analyze_model_untiled(
        model, dataflow::Dataflow::kRowStationary, accel.cost_params());
    ASSERT_TRUE(cost.feasible);
    // Fig. 2(a): 115.3 ms. Our model includes the FC layers' NVM
    // streaming which the silicon measurement excluded, so allow 2x.
    EXPECT_GT(cost.time_s, 0.115 * 0.5);
    EXPECT_LT(cost.time_s, 0.115 * 2.5);
}

TEST(CalibrationTest, EyerissAlexNetPowerNearPaper)
{
    ReconfigurableAccelerator::Config config;
    config.arch = AcceleratorArch::kEyeriss;
    config.n_pe = 168;
    config.cache_bytes_per_pe = 512;
    const ReconfigurableAccelerator accel(config);
    // Fig. 2(a): 278 mW average while computing.
    EXPECT_NEAR(accel.active_power_w(), 278e-3, 278e-3 * 0.4);
}

TEST(CalibrationTest, EyerissVsMcuGapMatchesMotivation)
{
    // The motivation of Fig. 2(a): the accelerator is orders of magnitude
    // faster per operation but needs far more power than harvesting can
    // supply. Check both directions of the gap.
    const Msp430Lea mcu;
    ReconfigurableAccelerator::Config config;
    config.arch = AcceleratorArch::kEyeriss;
    config.n_pe = 168;
    const ReconfigurableAccelerator accel(config);

    const double mcu_rate = mcu.cost_params().macs_per_s_per_pe;
    const double accel_rate =
        accel.cost_params().macs_per_s_per_pe * 168.0;
    EXPECT_GT(accel_rate / mcu_rate, 1000.0);
    EXPECT_GT(accel.active_power_w() / mcu.active_power_w(), 20.0);
}

}  // namespace
}  // namespace chrysalis::hw

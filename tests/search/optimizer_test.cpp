/// \file
/// Tests for the GA / random / grid black-box optimizers.

#include "search/optimizer.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace chrysalis::search {
namespace {

/// Convex bowl with optimum at (0.3, 0.7).
double
bowl(const std::vector<double>& genes)
{
    const double dx = genes[0] - 0.3;
    const double dy = genes[1] - 0.7;
    return dx * dx + dy * dy;
}

/// Deceptive multi-modal function: narrow global optimum at 0.85, broad
/// local optimum at 0.2.
double
deceptive(const std::vector<double>& genes)
{
    const double x = genes[0];
    const double local = 0.5 + 0.5 * std::pow(x - 0.2, 2.0);
    const double global = 10.0 * std::pow(x - 0.85, 2.0);
    return std::min(local, global);
}

OptimizerOptions
small_budget()
{
    OptimizerOptions options;
    options.population = 16;
    options.generations = 12;
    options.seed = 5;
    return options;
}

TEST(OptimizerTest, StrategyLabels)
{
    EXPECT_EQ(to_string(OptimizerStrategy::kGenetic), "ga");
    EXPECT_EQ(to_string(OptimizerStrategy::kRandom), "random");
    EXPECT_EQ(to_string(OptimizerStrategy::kGrid), "grid");
}

TEST(GeneticOptimizerTest, FindsBowlMinimum)
{
    const auto result = optimize_genetic(2, small_budget(), bowl);
    EXPECT_LT(result.best_score, 0.01);
    EXPECT_NEAR(result.best_genes[0], 0.3, 0.12);
    EXPECT_NEAR(result.best_genes[1], 0.7, 0.12);
}

TEST(GeneticOptimizerTest, DeterministicForSeed)
{
    const auto a = optimize_genetic(2, small_budget(), bowl);
    const auto b = optimize_genetic(2, small_budget(), bowl);
    EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
    EXPECT_EQ(a.best_genes, b.best_genes);
}

TEST(GeneticOptimizerTest, HistoryMatchesEvaluations)
{
    const auto options = small_budget();
    const auto result = optimize_genetic(2, options, bowl);
    EXPECT_EQ(result.evaluations,
              static_cast<int>(result.history.size()));
    // Elites carry over without re-evaluation: pop + (gens-1)*(pop-elite).
    EXPECT_EQ(result.evaluations,
              options.population +
                  (options.generations - 1) *
                      (options.population - options.elitism));
}

TEST(GeneticOptimizerTest, BestIsGlobalMinimumOfHistory)
{
    const auto result = optimize_genetic(3, small_budget(), bowl);
    for (const auto& point : result.history)
        EXPECT_GE(point.score, result.best_score);
}

TEST(GeneticOptimizerTest, BeatsRandomInHigherDimensions)
{
    // In 1-D a couple hundred random samples saturate any landscape; the
    // GA's advantage appears when the search space has several knobs
    // (5 genes, like the future-AuT space). Quadratic bowl centered off
    // the middle of the cube.
    const auto bowl5 = [](const std::vector<double>& genes) {
        double sum = 0.0;
        const double targets[5] = {0.3, 0.7, 0.15, 0.9, 0.5};
        for (int i = 0; i < 5; ++i) {
            const double d = genes[static_cast<std::size_t>(i)] -
                             targets[i];
            sum += d * d;
        }
        return sum;
    };
    double ga_sum = 0.0, random_sum = 0.0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        OptimizerOptions options = small_budget();
        options.seed = seed;
        ga_sum += optimize_genetic(5, options, bowl5).best_score;
        random_sum += optimize_random(5, options, bowl5).best_score;
    }
    EXPECT_LT(ga_sum, random_sum);
    (void)deceptive;  // the 1-D landscape is still exercised below
}

TEST(GeneticOptimizerTest, SolvesDeceptiveLandscape)
{
    OptimizerOptions options = small_budget();
    const auto result = optimize_genetic(1, options, deceptive);
    // Global optimum basin: 10(x-0.85)^2 < 0.5 within |x-0.85| < 0.22.
    EXPECT_LT(result.best_score, 0.05);
}

TEST(RandomOptimizerTest, RespectsBudgetAndRange)
{
    const auto options = small_budget();
    const auto result = optimize_random(3, options, bowl);
    EXPECT_EQ(result.evaluations,
              options.population * options.generations);
    for (const auto& point : result.history) {
        for (double gene : point.genes) {
            EXPECT_GE(gene, 0.0);
            EXPECT_LT(gene, 1.0);
        }
    }
}

TEST(RandomOptimizerTest, ConvergesRoughly)
{
    OptimizerOptions options = small_budget();
    options.population = 32;
    options.generations = 32;
    const auto result = optimize_random(2, options, bowl);
    EXPECT_LT(result.best_score, 0.05);
}

TEST(GridOptimizerTest, CoversCornersAndCenter)
{
    OptimizerOptions options;
    options.population = 9;
    options.generations = 1;  // budget 9 -> 3x3 grid on 2 genes
    const auto result = optimize_grid(2, options, bowl);
    EXPECT_EQ(result.evaluations, 9);
    bool corner = false, center = false;
    for (const auto& point : result.history) {
        if (point.genes[0] == 0.0 && point.genes[1] == 0.0)
            corner = true;
        if (point.genes[0] == 0.5 && point.genes[1] == 0.5)
            center = true;
    }
    EXPECT_TRUE(corner);
    EXPECT_TRUE(center);
}

TEST(GridOptimizerTest, OneDimensionalSweep)
{
    OptimizerOptions options;
    options.population = 11;
    options.generations = 1;
    const auto result = optimize_grid(
        1, options, [](const std::vector<double>& g) { return g[0]; });
    EXPECT_EQ(result.evaluations, 11);
    EXPECT_DOUBLE_EQ(result.best_genes[0], 0.0);
}

TEST(OptimizeDispatchTest, AllStrategiesReachTheBowl)
{
    OptimizerOptions options = small_budget();
    options.population = 24;
    options.generations = 24;
    for (auto strategy :
         {OptimizerStrategy::kGenetic, OptimizerStrategy::kRandom,
          OptimizerStrategy::kGrid}) {
        const auto result = optimize(strategy, 2, options, bowl);
        EXPECT_LT(result.best_score, 0.05) << to_string(strategy);
    }
}

TEST(GeneticOptimizerTest, WarmStartSeedIsEvaluatedFirst)
{
    OptimizerOptions options = small_budget();
    options.seed_genes.push_back({0.3, 0.7});  // the exact optimum
    const auto result = optimize_genetic(2, options, bowl);
    ASSERT_FALSE(result.history.empty());
    EXPECT_EQ(result.history.front().genes,
              (std::vector<double>{0.3, 0.7}));
    // The optimum was handed in, so the best score is (near) zero.
    EXPECT_LT(result.best_score, 1e-12);
}

TEST(GeneticOptimizerTest, WarmStartNeverWorseThanSeed)
{
    // Even a bad seed cannot make the result worse than random search
    // finds, and the seed's own score bounds the result from above.
    OptimizerOptions options = small_budget();
    options.seed_genes.push_back({1.0, 0.0});
    const auto result = optimize_genetic(2, options, bowl);
    EXPECT_LE(result.best_score, bowl({1.0, 0.0}));
}

TEST(GeneticOptimizerDeathTest, WrongSizedSeedIsFatal)
{
    OptimizerOptions options = small_budget();
    options.seed_genes.push_back({0.5});  // 1 gene for a 2-gene problem
    EXPECT_EXIT(optimize_genetic(2, options, bowl),
                ::testing::ExitedWithCode(1), "seed individual");
}

TEST(OptimizerDeathTest, BadOptionsAreFatal)
{
    OptimizerOptions options;
    options.population = 1;
    EXPECT_EXIT(optimize_genetic(2, options, bowl),
                ::testing::ExitedWithCode(1), "population");
    options = OptimizerOptions{};
    options.elitism = 99;
    EXPECT_EXIT(optimize_genetic(2, options, bowl),
                ::testing::ExitedWithCode(1), "elitism");
    EXPECT_EXIT(optimize_genetic(0, OptimizerOptions{}, bowl),
                ::testing::ExitedWithCode(1), "gene_count");
}

}  // namespace
}  // namespace chrysalis::search

/// \file
/// Determinism contract of the parallel runtime: for a fixed seed, every
/// search path (GA, random, grid, NSGA-II, bi-level explorer, campaign)
/// must produce bit-identical results at any thread count, with or
/// without the evaluation memo. This is what licenses turning on
/// `threads = hardware_concurrency()` by default.

#include <cmath>
#include <mutex>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "dnn/model_zoo.hpp"
#include "search/bilevel_explorer.hpp"
#include "search/nsga2.hpp"
#include "search/optimizer.hpp"

namespace chrysalis::search {
namespace {

/// Pure, thread-safe synthetic fitness with several local minima.
double
synthetic_fitness(const std::vector<double>& genes)
{
    double score = 0.0;
    for (std::size_t g = 0; g < genes.size(); ++g) {
        const double x = genes[g] - 0.3 * static_cast<double>(g + 1) / 4.0;
        score += x * x + 0.1 * std::cos(20.0 * x);
    }
    return score;
}

OptimizerOptions
small_options(int threads)
{
    OptimizerOptions opts;
    opts.population = 12;
    opts.generations = 6;
    opts.seed = 77;
    opts.threads = threads;
    return opts;
}

void
expect_identical(const OptimizeResult& serial,
                 const OptimizeResult& parallel)
{
    EXPECT_EQ(serial.evaluations, parallel.evaluations);
    EXPECT_EQ(serial.best_score, parallel.best_score);
    EXPECT_EQ(serial.best_genes, parallel.best_genes);
    ASSERT_EQ(serial.history.size(), parallel.history.size());
    for (std::size_t i = 0; i < serial.history.size(); ++i) {
        EXPECT_EQ(serial.history[i].score, parallel.history[i].score) << i;
        EXPECT_EQ(serial.history[i].genes, parallel.history[i].genes) << i;
    }
}

TEST(ParallelDeterminismTest, GeneticMatchesSerialAtFourThreads)
{
    const auto serial =
        optimize_genetic(4, small_options(1), synthetic_fitness);
    const auto parallel =
        optimize_genetic(4, small_options(4), synthetic_fitness);
    expect_identical(serial, parallel);
}

TEST(ParallelDeterminismTest, RandomMatchesSerialAtFourThreads)
{
    const auto serial =
        optimize_random(4, small_options(1), synthetic_fitness);
    const auto parallel =
        optimize_random(4, small_options(4), synthetic_fitness);
    expect_identical(serial, parallel);
}

TEST(ParallelDeterminismTest, GridMatchesSerialAtFourThreads)
{
    const auto serial =
        optimize_grid(3, small_options(1), synthetic_fitness);
    const auto parallel =
        optimize_grid(3, small_options(4), synthetic_fitness);
    expect_identical(serial, parallel);
}

TEST(ParallelDeterminismTest, IndexedFitnessSeesSequentialIndices)
{
    // Indices must be the position in history, regardless of threads.
    std::mutex mutex;
    std::vector<int> seen(12 * 6, 0);
    const IndexedFitnessFn fitness =
        [&](std::size_t index, const std::vector<double>& genes) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                EXPECT_LT(index, seen.size());
                if (index < seen.size())
                    ++seen[index];
            }
            return synthetic_fitness(genes);
        };
    const auto result = optimize_genetic(4, small_options(4), fitness);
    EXPECT_EQ(result.evaluations, static_cast<int>(result.history.size()));
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(result.evaluations); ++i)
        EXPECT_EQ(seen[i], 1) << i;
}

TEST(ParallelDeterminismTest, Nsga2MatchesSerialAtFourThreads)
{
    const BiFitnessFn fitness = [](const std::vector<double>& genes) {
        return std::array<double, 2>{synthetic_fitness(genes),
                                     1.0 - genes[0]};
    };
    const auto serial = optimize_nsga2(3, small_options(1), fitness);
    const auto parallel = optimize_nsga2(3, small_options(4), fitness);
    EXPECT_EQ(serial.evaluations, parallel.evaluations);
    ASSERT_EQ(serial.front.size(), parallel.front.size());
    for (std::size_t i = 0; i < serial.front.size(); ++i) {
        EXPECT_EQ(serial.front[i].genes, parallel.front[i].genes) << i;
        EXPECT_EQ(serial.front[i].objectives,
                  parallel.front[i].objectives)
            << i;
    }
    ASSERT_EQ(serial.history.size(), parallel.history.size());
    for (std::size_t i = 0; i < serial.history.size(); ++i)
        EXPECT_EQ(serial.history[i].objectives,
                  parallel.history[i].objectives)
            << i;
}

ExplorerOptions
explorer_options(int threads, std::size_t cache_capacity)
{
    ExplorerOptions options;
    options.outer.population = 8;
    options.outer.generations = 4;
    options.outer.seed = 11;
    options.outer.threads = threads;
    options.inner.max_candidates_per_dim = 4;
    options.cache_capacity = cache_capacity;
    return options;
}

void
expect_identical_exploration(const ExplorationResult& a,
                             const ExplorationResult& b)
{
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.best.score, b.best.score);
    EXPECT_EQ(a.best.candidate.solar_cm2, b.best.candidate.solar_cm2);
    EXPECT_EQ(a.best.candidate.capacitance_f,
              b.best.candidate.capacitance_f);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].score, b.history[i].score) << i;
        EXPECT_EQ(a.history[i].mean_latency_s, b.history[i].mean_latency_s)
            << i;
    }
    ASSERT_EQ(a.pareto.size(), b.pareto.size());
    for (std::size_t i = 0; i < a.pareto.size(); ++i) {
        EXPECT_EQ(a.pareto[i].x, b.pareto[i].x) << i;
        EXPECT_EQ(a.pareto[i].y, b.pareto[i].y) << i;
        EXPECT_EQ(a.pareto[i].tag, b.pareto[i].tag) << i;
    }
}

TEST(ParallelDeterminismTest, ExplorerMatchesSerialAtFourThreads)
{
    const dnn::Model model = dnn::make_simple_conv();
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const BiLevelExplorer serial(model, DesignSpace::existing_aut(),
                                 objective, explorer_options(1, 1024));
    const BiLevelExplorer parallel(model, DesignSpace::existing_aut(),
                                   objective, explorer_options(4, 1024));
    expect_identical_exploration(serial.explore(), parallel.explore());
}

TEST(ParallelDeterminismTest, ExplorerCacheDoesNotChangeResults)
{
    const dnn::Model model = dnn::make_simple_conv();
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const BiLevelExplorer cached(model, DesignSpace::existing_aut(),
                                 objective, explorer_options(1, 1024));
    const BiLevelExplorer uncached(model, DesignSpace::existing_aut(),
                                   objective, explorer_options(1, 0));
    expect_identical_exploration(cached.explore(), uncached.explore());
}

TEST(ParallelDeterminismTest, ExplorerParetoMatchesSerialAtFourThreads)
{
    const dnn::Model model = dnn::make_simple_conv();
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const BiLevelExplorer serial(model, DesignSpace::existing_aut(),
                                 objective, explorer_options(1, 1024));
    const BiLevelExplorer parallel(model, DesignSpace::existing_aut(),
                                   objective, explorer_options(4, 1024));
    const auto front_serial = serial.explore_pareto();
    const auto front_parallel = parallel.explore_pareto();
    ASSERT_EQ(front_serial.size(), front_parallel.size());
    for (std::size_t i = 0; i < front_serial.size(); ++i) {
        EXPECT_EQ(front_serial[i].score, front_parallel[i].score) << i;
        EXPECT_EQ(front_serial[i].mean_latency_s,
                  front_parallel[i].mean_latency_s)
            << i;
    }
}

TEST(ParallelDeterminismTest, CacheHitsOnDuplicateGenomes)
{
    // Duplicate warm starts guarantee repeated genomes in the initial GA
    // population; surviving clones add more during variation.
    const dnn::Model model = dnn::make_simple_conv();
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const BiLevelExplorer explorer(model, DesignSpace::existing_aut(),
                                   objective, explorer_options(2, 1024));
    const auto defaults = explorer.space().defaults;
    const auto result = explorer.explore({defaults, defaults});
    EXPECT_GT(result.cache.hits, 0u);
    EXPECT_GT(result.cache.misses, 0u);
    EXPECT_GT(result.cache.hit_rate(), 0.0);
}

TEST(ParallelDeterminismTest, RepeatedExploreIsServedFromCache)
{
    // Same seed => identical genome stream => the second run's unique
    // designs are all memo hits (clone hits already occur within run 1).
    const dnn::Model model = dnn::make_simple_conv();
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const BiLevelExplorer explorer(model, DesignSpace::existing_aut(),
                                   objective, explorer_options(1, 4096));
    const auto first = explorer.explore();
    const auto second = explorer.explore();
    EXPECT_EQ(second.cache.misses, 0u);
    EXPECT_EQ(second.cache.hits,
              static_cast<std::uint64_t>(second.evaluations));
    expect_identical_exploration(first, second);
}

TEST(ParallelDeterminismTest, CampaignMatchesSerialAtTwoThreads)
{
    std::vector<core::CampaignCase> cases;
    cases.push_back({"conv", dnn::make_simple_conv(),
                     DesignSpace::existing_aut(),
                     {ObjectiveKind::kLatSp, 0.0, 0.0}});
    cases.push_back({"kws", dnn::make_kws_mlp(),
                     DesignSpace::existing_aut(),
                     {ObjectiveKind::kLatency, 10.0, 0.0}});

    const auto serial =
        core::run_campaign(cases, explorer_options(1, 1024));
    core::CampaignOptions campaign_options;
    campaign_options.threads = 2;
    const auto parallel = core::run_campaign(
        cases, explorer_options(1, 1024), campaign_options);
    ASSERT_EQ(serial.entries.size(), parallel.entries.size());
    for (std::size_t i = 0; i < serial.entries.size(); ++i) {
        EXPECT_EQ(serial.entries[i].label, parallel.entries[i].label);
        EXPECT_EQ(serial.entries[i].solution.score,
                  parallel.entries[i].solution.score)
            << i;
        EXPECT_EQ(serial.entries[i].solution.mean_latency_s,
                  parallel.entries[i].solution.mean_latency_s)
            << i;
        EXPECT_EQ(serial.entries[i].solution.evaluations,
                  parallel.entries[i].solution.evaluations)
            << i;
        EXPECT_GE(parallel.entries[i].wall_time_s, 0.0);
    }
    EXPECT_GE(parallel.wall_time_s, 0.0);
}

}  // namespace
}  // namespace chrysalis::search

/// \file
/// Tests for design spaces, candidate encoding and Table VI baselines.

#include "search/design_space.hpp"

#include <gtest/gtest.h>

namespace chrysalis::search {
namespace {

TEST(DesignSpaceTest, ExistingAutMatchesTableIv)
{
    const DesignSpace space = DesignSpace::existing_aut();
    EXPECT_EQ(space.family, HardwareFamily::kMsp430);
    EXPECT_DOUBLE_EQ(space.solar_min_cm2, 1.0);
    EXPECT_DOUBLE_EQ(space.solar_max_cm2, 30.0);
    EXPECT_DOUBLE_EQ(space.cap_min_f, 1e-6);
    EXPECT_DOUBLE_EQ(space.cap_max_f, 10e-3);
    EXPECT_TRUE(space.search_solar);
    EXPECT_TRUE(space.search_capacitor);
    EXPECT_EQ(space.searchable_knob_count(), 2);
}

TEST(DesignSpaceTest, FutureAutMatchesTableV)
{
    const DesignSpace space = DesignSpace::future_aut();
    EXPECT_EQ(space.family, HardwareFamily::kAccelerator);
    EXPECT_EQ(space.pe_min, 1);
    EXPECT_EQ(space.pe_max, 168);
    EXPECT_EQ(space.cache_min_bytes, 128);
    EXPECT_EQ(space.cache_max_bytes, 2048);
    EXPECT_EQ(space.searchable_knob_count(), 5);
}

TEST(DesignSpaceTest, ClampEnforcesRanges)
{
    const DesignSpace space = DesignSpace::future_aut();
    HwCandidate candidate;
    candidate.solar_cm2 = 100.0;
    candidate.capacitance_f = 1.0;
    candidate.n_pe = 1000;
    candidate.cache_bytes = 10;
    const HwCandidate clamped = space.clamp(candidate);
    EXPECT_DOUBLE_EQ(clamped.solar_cm2, 30.0);
    EXPECT_DOUBLE_EQ(clamped.capacitance_f, 10e-3);
    EXPECT_EQ(clamped.n_pe, 168);
    EXPECT_EQ(clamped.cache_bytes, 128);
}

TEST(DesignSpaceTest, FrozenKnobsSnapToDefaults)
{
    DesignSpace space = DesignSpace::future_aut();
    space = apply_baseline(space, BaselineKind::kWoEa);
    HwCandidate candidate;
    candidate.solar_cm2 = 25.0;
    candidate.capacitance_f = 5e-3;
    const HwCandidate clamped = space.clamp(candidate);
    EXPECT_DOUBLE_EQ(clamped.solar_cm2, space.defaults.solar_cm2);
    EXPECT_DOUBLE_EQ(clamped.capacitance_f,
                     space.defaults.capacitance_f);
}

TEST(DesignSpaceTest, Msp430CandidateIsSinglePe)
{
    const DesignSpace space = DesignSpace::existing_aut();
    HwCandidate candidate;
    candidate.n_pe = 77;
    const HwCandidate clamped = space.clamp(candidate);
    EXPECT_EQ(clamped.n_pe, 1);
    EXPECT_EQ(clamped.family, HardwareFamily::kMsp430);
}

TEST(HwCandidateTest, BuildsMspHardware)
{
    HwCandidate candidate;
    candidate.family = HardwareFamily::kMsp430;
    const auto hardware = candidate.build_hardware();
    EXPECT_EQ(hardware->name(), "msp430fr5994");
}

TEST(HwCandidateTest, BuildsAcceleratorHardware)
{
    HwCandidate candidate;
    candidate.family = HardwareFamily::kAccelerator;
    candidate.arch = hw::AcceleratorArch::kTpu;
    candidate.n_pe = 42;
    candidate.cache_bytes = 256;
    const auto hardware = candidate.build_hardware();
    EXPECT_EQ(hardware->name(), "tpu");
    EXPECT_EQ(hardware->cost_params().n_pe, 42);
    EXPECT_EQ(hardware->cost_params().vm_bytes_per_pe, 256);
}

TEST(HwCandidateTest, DescribeIsInformative)
{
    HwCandidate candidate;
    candidate.family = HardwareFamily::kAccelerator;
    candidate.solar_cm2 = 8.0;
    candidate.n_pe = 64;
    const std::string text = candidate.describe();
    EXPECT_NE(text.find("sp=8.0cm2"), std::string::npos);
    EXPECT_NE(text.find("pe=64"), std::string::npos);
}

TEST(BaselineTest, LabelsMatchTableVi)
{
    EXPECT_EQ(to_string(BaselineKind::kFull), "CHRYSALIS");
    EXPECT_EQ(to_string(BaselineKind::kWoCap), "wo/Cap");
    EXPECT_EQ(to_string(BaselineKind::kWoSp), "wo/SP");
    EXPECT_EQ(to_string(BaselineKind::kWoEa), "wo/EA");
    EXPECT_EQ(to_string(BaselineKind::kWoPe), "wo/PE");
    EXPECT_EQ(to_string(BaselineKind::kWoCache), "wo/Cache");
    EXPECT_EQ(to_string(BaselineKind::kWoIa), "wo/IA");
    EXPECT_EQ(all_baselines().size(), 7u);
    EXPECT_EQ(all_baselines().back(), BaselineKind::kFull);
}

class BaselineFreezeTest : public ::testing::TestWithParam<BaselineKind>
{
};

TEST_P(BaselineFreezeTest, FreezesTheRightKnobs)
{
    const DesignSpace space =
        apply_baseline(DesignSpace::future_aut(), GetParam());
    switch (GetParam()) {
      case BaselineKind::kFull:
        EXPECT_EQ(space.searchable_knob_count(), 5);
        break;
      case BaselineKind::kWoCap:
        EXPECT_FALSE(space.search_capacitor);
        EXPECT_TRUE(space.search_solar);
        EXPECT_EQ(space.searchable_knob_count(), 4);
        break;
      case BaselineKind::kWoSp:
        EXPECT_FALSE(space.search_solar);
        EXPECT_TRUE(space.search_capacitor);
        break;
      case BaselineKind::kWoEa:
        EXPECT_FALSE(space.search_solar);
        EXPECT_FALSE(space.search_capacitor);
        EXPECT_EQ(space.searchable_knob_count(), 3);
        break;
      case BaselineKind::kWoPe:
        EXPECT_FALSE(space.search_pe);
        EXPECT_TRUE(space.search_cache);
        break;
      case BaselineKind::kWoCache:
        EXPECT_FALSE(space.search_cache);
        EXPECT_TRUE(space.search_pe);
        break;
      case BaselineKind::kWoIa:
        EXPECT_FALSE(space.search_pe);
        EXPECT_FALSE(space.search_cache);
        EXPECT_FALSE(space.search_arch);
        EXPECT_EQ(space.searchable_knob_count(), 2);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineFreezeTest,
                         ::testing::ValuesIn(all_baselines()),
                         [](const auto& param_info) {
                             std::string name =
                                 to_string(param_info.param);
                             for (char& c : name) {
                                 if (c == '/')
                                     c = '_';
                             }
                             return name;
                         });

}  // namespace
}  // namespace chrysalis::search

/// \file
/// Tests for the NSGA-II multi-objective optimizer and the explorer's
/// Pareto mode.

#include "search/nsga2.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "search/bilevel_explorer.hpp"

namespace chrysalis::search {
namespace {

TEST(BiDominatesTest, Rules)
{
    EXPECT_TRUE(bi_dominates({1, 1}, {2, 2}));
    EXPECT_TRUE(bi_dominates({1, 2}, {2, 2}));
    EXPECT_FALSE(bi_dominates({1, 3}, {2, 2}));
    EXPECT_FALSE(bi_dominates({2, 2}, {2, 2}));
}

TEST(NonDominatedRanksTest, LayeredFronts)
{
    // Front 0: (1,4) (2,2) (4,1); front 1: (2,5) (3,3); front 2: (5,5).
    const std::vector<std::array<double, 2>> objectives = {
        {1, 4}, {2, 2}, {4, 1}, {2, 5}, {3, 3}, {5, 5},
    };
    const auto ranks = non_dominated_ranks(objectives);
    EXPECT_EQ(ranks[0], 0);
    EXPECT_EQ(ranks[1], 0);
    EXPECT_EQ(ranks[2], 0);
    EXPECT_EQ(ranks[3], 1);
    EXPECT_EQ(ranks[4], 1);
    EXPECT_EQ(ranks[5], 2);
}

TEST(NonDominatedRanksTest, AllEqualAreRankZero)
{
    const std::vector<std::array<double, 2>> objectives = {
        {1, 1}, {1, 1}, {1, 1}};
    for (int rank : non_dominated_ranks(objectives))
        EXPECT_EQ(rank, 0);
}

TEST(CrowdingDistancesTest, BoundariesAreInfinite)
{
    const std::vector<std::array<double, 2>> objectives = {
        {1, 4}, {2, 2}, {4, 1}};
    const auto distances = crowding_distances(objectives);
    EXPECT_TRUE(std::isinf(distances[0]));
    EXPECT_TRUE(std::isinf(distances[2]));
    EXPECT_FALSE(std::isinf(distances[1]));
    EXPECT_GT(distances[1], 0.0);
}

TEST(CrowdingDistancesTest, TinyFrontsAreAllInfinite)
{
    const auto one = crowding_distances({{1, 1}});
    EXPECT_TRUE(std::isinf(one[0]));
    const auto two = crowding_distances({{1, 2}, {2, 1}});
    EXPECT_TRUE(std::isinf(two[0]));
    EXPECT_TRUE(std::isinf(two[1]));
}

/// Classic convex test problem (Schaffer-like on [0,1]^1 scaled):
/// f1 = x^2, f2 = (x-1)^2; the true front is x in [0,1].
std::array<double, 2>
schaffer(const std::vector<double>& genes)
{
    const double x = genes[0];
    return {x * x, (x - 1.0) * (x - 1.0)};
}

TEST(Nsga2Test, RecoversSchafferFront)
{
    OptimizerOptions options;
    options.population = 24;
    options.generations = 20;
    options.seed = 3;
    const Nsga2Result result = optimize_nsga2(1, options, schaffer);
    ASSERT_GE(result.front.size(), 5u);
    // Front spans both ends of the tradeoff.
    EXPECT_LT(result.front.front().objectives[0], 0.05);
    EXPECT_LT(result.front.back().objectives[1], 0.05);
    // Sorted by f1 and mutually non-dominated.
    for (std::size_t i = 1; i < result.front.size(); ++i) {
        EXPECT_GE(result.front[i].objectives[0],
                  result.front[i - 1].objectives[0]);
        EXPECT_FALSE(bi_dominates(result.front[i].objectives,
                                  result.front[i - 1].objectives));
        EXPECT_FALSE(bi_dominates(result.front[i - 1].objectives,
                                  result.front[i].objectives));
    }
}

TEST(Nsga2Test, DeterministicForSeed)
{
    OptimizerOptions options;
    options.population = 12;
    options.generations = 8;
    options.seed = 11;
    const auto a = optimize_nsga2(1, options, schaffer);
    const auto b = optimize_nsga2(1, options, schaffer);
    ASSERT_EQ(a.front.size(), b.front.size());
    for (std::size_t i = 0; i < a.front.size(); ++i)
        EXPECT_EQ(a.front[i].objectives, b.front[i].objectives);
}

TEST(Nsga2DeathTest, ValidatesOptions)
{
    OptimizerOptions options;
    options.population = 2;
    EXPECT_EXIT(optimize_nsga2(1, options, schaffer),
                ::testing::ExitedWithCode(1), "population");
    EXPECT_EXIT(optimize_nsga2(0, OptimizerOptions{}, schaffer),
                ::testing::ExitedWithCode(1), "gene_count");
}

TEST(ExploreParetoTest, FrontIsFeasibleSortedAndNonDominated)
{
    ExplorerOptions options;
    options.outer.population = 16;
    options.outer.generations = 8;
    options.outer.seed = 5;
    options.inner.max_candidates_per_dim = 4;
    BiLevelExplorer explorer(dnn::make_simple_conv(),
                             DesignSpace::existing_aut(),
                             {ObjectiveKind::kLatSp, 0.0, 0.0}, options);
    const auto front = explorer.explore_pareto();
    ASSERT_GE(front.size(), 2u);
    for (std::size_t i = 0; i < front.size(); ++i) {
        EXPECT_TRUE(front[i].feasible);
        if (i > 0) {
            EXPECT_GE(front[i].candidate.solar_cm2,
                      front[i - 1].candidate.solar_cm2);
            EXPECT_LE(front[i].mean_latency_s,
                      front[i - 1].mean_latency_s * (1.0 + 1e-9));
        }
    }
}

}  // namespace
}  // namespace chrysalis::search

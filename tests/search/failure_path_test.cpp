/// \file
/// Failure-path coverage for the search layer: failure codes must
/// propagate from the inner mapping search and the analytic evaluator
/// through BiLevelExplorer as graded penalties (never aborts), and
/// fault-injected searches must stay deterministic at any thread count.

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "search/bilevel_explorer.hpp"

namespace chrysalis::search {
namespace {

ExplorerOptions
small_options(int threads = 1)
{
    ExplorerOptions options;
    options.outer.population = 8;
    options.outer.generations = 4;
    options.outer.seed = 11;
    options.outer.threads = threads;
    options.inner.max_candidates_per_dim = 4;
    return options;
}

fault::FaultSpec
storm_spec()
{
    fault::FaultSpec spec;
    spec.seed = 9;
    spec.dropout_window_s = 600.0;
    spec.dropout_probability = 0.4;
    spec.dropout_duration_s = 300.0;
    spec.mission_age_years = 5.0;
    return spec;
}

TEST(FailurePathTest, NvmCapacityFailurePropagatesToDesign)
{
    // AlexNet cannot fit the MSP430's FRAM: the evaluated design must
    // carry the structural failure code, not just "infeasible".
    ExplorerOptions options = small_options();
    options.inner.max_candidates_per_dim = 2;
    const BiLevelExplorer explorer(
        dnn::make_alexnet(), DesignSpace::existing_aut(),
        Objective{ObjectiveKind::kLatSp, 0.0, 0.0}, options);
    const EvaluatedDesign design =
        explorer.evaluate(explorer.space().defaults);
    EXPECT_FALSE(design.feasible);
    EXPECT_EQ(design.failure.code,
              fault::FailureCode::kNvmCapacityExceeded);
    // Structural failures score strictly worse than any feasible or
    // constraint-violating design (which cap below 10 * 1e9).
    EXPECT_GE(design.score, 1e10);
}

TEST(FailurePathTest, ZeroHarvestEnvironmentDegradesInsteadOfAborting)
{
    // A near-dark environment makes every candidate infeasible; the
    // search must still run to completion and return graded penalties
    // with a failure code on every design.
    ExplorerOptions options = small_options();
    options.k_eh_envs = {1e-9};
    const BiLevelExplorer explorer(
        dnn::make_kws_mlp(), DesignSpace::existing_aut(),
        Objective{ObjectiveKind::kLatSp, 0.0, 0.0}, options);
    const ExplorationResult result = explorer.explore();
    EXPECT_FALSE(result.best.feasible);
    EXPECT_TRUE(static_cast<bool>(result.best.failure));
    EXPECT_TRUE(result.pareto.empty());
    for (const auto& design : result.history) {
        EXPECT_FALSE(design.feasible);
        EXPECT_TRUE(static_cast<bool>(design.failure));
        EXPECT_GE(design.score, 1e10);
    }
}

TEST(FailurePathTest, PenaltiesDominateConstraintViolations)
{
    const Objective objective{ObjectiveKind::kLatency, 20.0, 0.0};
    // Worst graded constraint violation caps at 9 * 1e9...
    const double violating = objective.score(1.0, 1e9);
    // ...while the mildest failure penalty starts at 10 * 1e9.
    const double penalty = objective.penalty_score(
        fault::make_failure(fault::FailureCode::kTileExceedsCycle));
    EXPECT_LT(violating, penalty);
    // And penalty bands follow the code's distance from feasibility.
    const double crashed = objective.penalty_score(
        fault::make_failure(fault::FailureCode::kCrashed));
    EXPECT_LT(penalty, crashed);
    // Within a band, larger violations score worse but never cross
    // into the next band.
    const double graded = objective.penalty_score(
        fault::make_failure(fault::FailureCode::kTileExceedsCycle), 1e5);
    EXPECT_GT(graded, penalty);
    const double next_band = objective.penalty_score(
        fault::make_failure(fault::FailureCode::kTimeout));
    EXPECT_LT(graded, next_band);
}

TEST(FailurePathTest, FaultedSearchIsDeterministicAcrossThreads)
{
    const fault::FaultInjector faults(storm_spec());
    ExplorerOptions serial_options = small_options(1);
    serial_options.faults = &faults;
    ExplorerOptions parallel_options = small_options(4);
    parallel_options.faults = &faults;
    const dnn::Model model = dnn::make_simple_conv();
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const BiLevelExplorer serial(model, DesignSpace::existing_aut(),
                                 objective, serial_options);
    const BiLevelExplorer parallel(model, DesignSpace::existing_aut(),
                                   objective, parallel_options);
    const ExplorationResult a = serial.explore();
    const ExplorationResult b = parallel.explore();
    EXPECT_EQ(a.best.score, b.best.score);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].score, b.history[i].score) << i;
        EXPECT_EQ(a.history[i].mean_latency_s, b.history[i].mean_latency_s)
            << i;
    }
}

TEST(FailurePathTest, FaultsDegradeTheBestDesign)
{
    // The faulted search sees less harvest and an aged capacitor, so its
    // optimum cannot beat the clean search's.
    const dnn::Model model = dnn::make_simple_conv();
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const BiLevelExplorer clean(model, DesignSpace::existing_aut(),
                                objective, small_options());
    const fault::FaultInjector faults(storm_spec());
    ExplorerOptions faulted_options = small_options();
    faulted_options.faults = &faults;
    const BiLevelExplorer faulted(model, DesignSpace::existing_aut(),
                                  objective, faulted_options);
    const double clean_score = clean.explore().best.score;
    const double faulted_score = faulted.explore().best.score;
    EXPECT_GT(faulted_score, clean_score);
}

TEST(FailurePathTest, FaultSpecIsPartOfTheMemoKey)
{
    // A faulted and a clean explorer must never alias cache entries for
    // the same candidate.
    const dnn::Model model = dnn::make_simple_conv();
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const BiLevelExplorer clean(model, DesignSpace::existing_aut(),
                                objective, small_options());
    const fault::FaultInjector faults(storm_spec());
    ExplorerOptions faulted_options = small_options();
    faulted_options.faults = &faults;
    const BiLevelExplorer faulted(model, DesignSpace::existing_aut(),
                                  objective, faulted_options);
    const HwCandidate candidate = clean.space().defaults;
    EXPECT_FALSE(clean.candidate_key(candidate) ==
                 faulted.candidate_key(candidate));
}

}  // namespace
}  // namespace chrysalis::search

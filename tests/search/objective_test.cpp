/// \file
/// Tests for the three objective functions of §IV.

#include "search/objective.hpp"

#include <gtest/gtest.h>

namespace chrysalis::search {
namespace {

TEST(ObjectiveTest, Labels)
{
    EXPECT_EQ(to_string(ObjectiveKind::kLatency), "lat");
    EXPECT_EQ(to_string(ObjectiveKind::kSolarPanel), "sp");
    EXPECT_EQ(to_string(ObjectiveKind::kLatSp), "lat*sp");
}

TEST(ObjectiveTest, LatencyObjectiveScoresLatencyWhenFeasible)
{
    Objective objective{ObjectiveKind::kLatency, 20.0, 0.0};
    EXPECT_DOUBLE_EQ(objective.score(3.5, 10.0), 3.5);
    EXPECT_TRUE(objective.satisfies_constraint(3.5, 10.0));
}

TEST(ObjectiveTest, LatencyObjectivePenalizesOversizedPanel)
{
    Objective objective{ObjectiveKind::kLatency, 20.0, 0.0};
    const double penalized = objective.score(3.5, 25.0);
    EXPECT_GT(penalized, 1e8);
    EXPECT_FALSE(objective.satisfies_constraint(3.5, 25.0));
    // Larger violations score worse (gradient for the GA).
    EXPECT_GT(objective.score(3.5, 30.0), penalized);
}

TEST(ObjectiveTest, SolarObjectiveScoresAreaWhenFeasible)
{
    Objective objective{ObjectiveKind::kSolarPanel, 0.0, 10.0};
    EXPECT_DOUBLE_EQ(objective.score(8.0, 12.5), 12.5);
    EXPECT_GT(objective.score(11.0, 12.5), 1e8);
    // Worse latency violations rank worse.
    EXPECT_GT(objective.score(20.0, 12.5), objective.score(11.0, 12.5));
}

TEST(ObjectiveTest, LatSpIsUnconstrainedProduct)
{
    Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    EXPECT_DOUBLE_EQ(objective.score(2.0, 8.0), 16.0);
    EXPECT_TRUE(objective.satisfies_constraint(1e9, 30.0));
}

TEST(ObjectiveTest, InfeasibleDominatesEveryConstraintViolation)
{
    Objective objective{ObjectiveKind::kLatency, 20.0, 0.0};
    const double violated = objective.score(1.0, 1000.0);
    EXPECT_GT(objective.infeasible_score(0.0), violated);
}

TEST(ObjectiveTest, InfeasibleScoreGrowsWithViolation)
{
    Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    EXPECT_GT(objective.infeasible_score(10.0),
              objective.infeasible_score(1.0));
}

TEST(ObjectiveTest, BoundaryIsFeasible)
{
    Objective objective{ObjectiveKind::kLatency, 20.0, 0.0};
    EXPECT_DOUBLE_EQ(objective.score(5.0, 20.0), 5.0);
    Objective sp_objective{ObjectiveKind::kSolarPanel, 0.0, 10.0};
    EXPECT_DOUBLE_EQ(sp_objective.score(10.0, 4.0), 4.0);
}

TEST(ObjectiveDeathTest, InvalidPointsPanic)
{
    Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    EXPECT_DEATH(objective.score(-1.0, 5.0), "invalid point");
    EXPECT_DEATH(objective.score(1.0, 0.0), "invalid point");
}

}  // namespace
}  // namespace chrysalis::search

/// \file
/// Tests for the bi-level explorer: decoding, evaluation, exploration and
/// the CHRYSALIS-vs-ablation ordering the paper's Fig. 10 reports.

#include "search/bilevel_explorer.hpp"

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"

namespace chrysalis::search {
namespace {

ExplorerOptions
small_options(std::uint64_t seed = 1)
{
    ExplorerOptions options;
    options.outer.population = 12;
    options.outer.generations = 6;
    options.outer.seed = seed;
    options.inner.max_candidates_per_dim = 4;
    return options;
}

BiLevelExplorer
make_explorer(Objective objective = {ObjectiveKind::kLatSp, 0.0, 0.0},
              std::uint64_t seed = 1)
{
    return BiLevelExplorer(dnn::make_simple_conv(),
                           DesignSpace::existing_aut(), objective,
                           small_options(seed));
}

TEST(BiLevelDecodeTest, GenesMapIntoRanges)
{
    const auto explorer = make_explorer();
    const HwCandidate lo =
        explorer.decode({0.0, 0.0, 0.0, 0.0, 0.0});
    const HwCandidate hi =
        explorer.decode({1.0, 1.0, 1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(lo.solar_cm2, 1.0);
    EXPECT_DOUBLE_EQ(hi.solar_cm2, 30.0);
    EXPECT_NEAR(lo.capacitance_f, 1e-6, 1e-9);
    EXPECT_NEAR(hi.capacitance_f, 10e-3, 1e-5);
}

TEST(BiLevelDecodeTest, CapacitanceIsLogScaled)
{
    const auto explorer = make_explorer();
    const HwCandidate mid =
        explorer.decode({0.5, 0.5, 0.5, 0.5, 0.5});
    // Geometric midpoint of [1 uF, 10 mF] = 100 uF.
    EXPECT_NEAR(mid.capacitance_f, 100e-6, 1e-6);
}

TEST(BiLevelDecodeTest, AcceleratorGenesDecodeArchPeCache)
{
    BiLevelExplorer explorer(dnn::make_alexnet(),
                             DesignSpace::future_aut(),
                             {ObjectiveKind::kLatSp, 0.0, 0.0},
                             small_options());
    const HwCandidate tpu =
        explorer.decode({0.5, 0.5, 0.2, 0.5, 0.5});
    EXPECT_EQ(tpu.arch, hw::AcceleratorArch::kTpu);
    const HwCandidate eyeriss =
        explorer.decode({0.5, 0.5, 0.8, 0.5, 0.5});
    EXPECT_EQ(eyeriss.arch, hw::AcceleratorArch::kEyeriss);
    const HwCandidate max_hw =
        explorer.decode({1.0, 1.0, 1.0, 1.0, 1.0});
    EXPECT_EQ(max_hw.n_pe, 168);
    EXPECT_EQ(max_hw.cache_bytes, 2048);
}

TEST(BiLevelEvaluateTest, FeasibleCandidateGetsRealScore)
{
    const auto explorer = make_explorer();
    HwCandidate candidate;
    candidate.solar_cm2 = 8.0;
    candidate.capacitance_f = 100e-6;
    const EvaluatedDesign design = explorer.evaluate(candidate);
    ASSERT_TRUE(design.feasible);
    EXPECT_GT(design.mean_latency_s, 0.0);
    EXPECT_NEAR(design.score, design.mean_latency_s * 8.0, 1e-9);
    EXPECT_EQ(design.per_env.size(), 2u);  // brighter + darker
}

TEST(BiLevelEvaluateTest, LeakageDominatedCandidateIsInfeasible)
{
    const auto explorer = make_explorer();
    HwCandidate candidate;
    candidate.solar_cm2 = 1.0;
    candidate.capacitance_f = 10e-3;  // darker env cannot charge this
    const EvaluatedDesign design = explorer.evaluate(candidate);
    EXPECT_FALSE(design.feasible);
    EXPECT_GT(design.score, 1e9);
}

TEST(BiLevelExploreTest, FindsFeasibleDesign)
{
    const auto explorer = make_explorer();
    const ExplorationResult result = explorer.explore();
    ASSERT_TRUE(result.best.feasible);
    EXPECT_EQ(result.evaluations,
              static_cast<int>(result.history.size()));
    EXPECT_FALSE(result.pareto.empty());
    // Pareto points must come from feasible history entries.
    for (const auto& point : result.pareto) {
        EXPECT_LT(point.tag, result.history.size());
        EXPECT_TRUE(result.history[point.tag].feasible);
    }
}

TEST(BiLevelExploreTest, DeterministicForSeed)
{
    const auto a = make_explorer({ObjectiveKind::kLatSp, 0.0, 0.0}, 3)
                       .explore();
    const auto b = make_explorer({ObjectiveKind::kLatSp, 0.0, 0.0}, 3)
                       .explore();
    EXPECT_DOUBLE_EQ(a.best.score, b.best.score);
    EXPECT_DOUBLE_EQ(a.best.candidate.solar_cm2,
                     b.best.candidate.solar_cm2);
}

TEST(BiLevelExploreTest, LatencyObjectiveRespectsPanelConstraint)
{
    const auto explorer =
        make_explorer({ObjectiveKind::kLatency, 6.0, 0.0}, 11);
    const ExplorationResult result = explorer.explore();
    ASSERT_TRUE(result.best.feasible);
    EXPECT_LE(result.best.candidate.solar_cm2, 6.0 + 1e-9);
}

TEST(BiLevelExploreTest, SolarObjectiveRespectsLatencyConstraint)
{
    const auto explorer =
        make_explorer({ObjectiveKind::kSolarPanel, 0.0, 5.0}, 13);
    const ExplorationResult result = explorer.explore();
    ASSERT_TRUE(result.best.feasible);
    EXPECT_LE(result.best.mean_latency_s, 5.0 + 1e-9);
}

TEST(BiLevelExploreTest, FullSearchBeatsFrozenEnergyBaseline)
{
    // Fig. 10's headline ordering: CHRYSALIS <= wo/EA on the same budget
    // (the full search can always reproduce the frozen configuration).
    const Objective objective{ObjectiveKind::kLatSp, 0.0, 0.0};
    const dnn::Model model = dnn::make_simple_conv();

    BiLevelExplorer full(model, DesignSpace::existing_aut(), objective,
                         small_options(21));
    BiLevelExplorer frozen(
        model,
        apply_baseline(DesignSpace::existing_aut(), BaselineKind::kWoEa),
        objective, small_options(21));

    const auto full_result = full.explore();
    const auto frozen_result = frozen.explore();
    ASSERT_TRUE(full_result.best.feasible);
    // A search over a superset space should not do (meaningfully) worse.
    EXPECT_LE(full_result.best.score,
              frozen_result.best.score * 1.05);
}

TEST(BiLevelExploreTest, RandomStrategyAlsoWorks)
{
    ExplorerOptions options = small_options(31);
    options.strategy = OptimizerStrategy::kRandom;
    BiLevelExplorer explorer(dnn::make_simple_conv(),
                             DesignSpace::existing_aut(),
                             {ObjectiveKind::kLatSp, 0.0, 0.0}, options);
    const auto result = explorer.explore();
    EXPECT_TRUE(result.best.feasible);
}

TEST(BiLevelEncodeTest, EncodeDecodeRoundTripsForMsp)
{
    const auto explorer = make_explorer();
    HwCandidate candidate;
    candidate.family = HardwareFamily::kMsp430;
    candidate.solar_cm2 = 12.5;
    candidate.capacitance_f = 330e-6;
    const HwCandidate round =
        explorer.decode(explorer.encode(candidate));
    EXPECT_NEAR(round.solar_cm2, 12.5, 1e-9);
    EXPECT_NEAR(round.capacitance_f, 330e-6, 1e-9);
}

TEST(BiLevelEncodeTest, EncodeDecodeRoundTripsForAccelerator)
{
    BiLevelExplorer explorer(dnn::make_alexnet(),
                             DesignSpace::future_aut(),
                             {ObjectiveKind::kLatSp, 0.0, 0.0},
                             small_options());
    HwCandidate candidate;
    candidate.family = HardwareFamily::kAccelerator;
    candidate.solar_cm2 = 8.0;
    candidate.capacitance_f = 1e-3;
    candidate.arch = hw::AcceleratorArch::kTpu;
    candidate.n_pe = 64;
    candidate.cache_bytes = 512;
    const HwCandidate round =
        explorer.decode(explorer.encode(candidate));
    EXPECT_EQ(round.arch, hw::AcceleratorArch::kTpu);
    EXPECT_EQ(round.n_pe, 64);
    EXPECT_EQ(round.cache_bytes, 512);
    EXPECT_NEAR(round.solar_cm2, 8.0, 1e-9);
}

TEST(BiLevelExploreTest, WarmStartMakesSupersetNeverLose)
{
    // The defaults-seeded full search must score at least as well as the
    // evaluation of the defaults themselves.
    const auto explorer = make_explorer({ObjectiveKind::kLatSp, 0.0, 0.0},
                                        77);
    const ExplorationResult result = explorer.explore();
    const EvaluatedDesign defaults =
        explorer.evaluate(explorer.space().defaults);
    EXPECT_LE(result.best.score, defaults.score * (1.0 + 1e-9));
}

TEST(BiLevelDeathTest, EmptyEnvironmentsAreFatal)
{
    ExplorerOptions options = small_options();
    options.k_eh_envs.clear();
    EXPECT_EXIT(BiLevelExplorer(dnn::make_simple_conv(),
                                DesignSpace::existing_aut(),
                                {ObjectiveKind::kLatSp, 0.0, 0.0},
                                options),
                ::testing::ExitedWithCode(1), "environment");
}

}  // namespace
}  // namespace chrysalis::search

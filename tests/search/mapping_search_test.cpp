/// \file
/// Tests for the SW-level (inner) mapping search.

#include "search/mapping_search.hpp"

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "hw/accelerator.hpp"
#include "hw/msp430_lea.hpp"

namespace chrysalis::search {
namespace {

sim::EnergyEnv
make_env(double p_eh_w, double cap_f = 470e-6)
{
    sim::EnergyEnv env;
    env.p_eh_w = p_eh_w;
    env.capacitor.capacitance_f = cap_f;
    return env;
}

TEST(MappingSearchTest, FindsFeasibleMappingForKws)
{
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;
    const auto result = search_mappings(model, mcu, {make_env(16e-3)},
                                        MappingSearchOptions{});
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.mappings.size(), model.layer_count());
    EXPECT_TRUE(result.cost.feasible);
    EXPECT_GT(result.evaluations, 0);
}

TEST(MappingSearchTest, WeakerEnvironmentForcesMoreTiles)
{
    const auto model = dnn::make_cifar10_cnn();
    const hw::Msp430Lea mcu;
    const MappingSearchOptions options;
    const auto rich = search_mappings(model, mcu,
                                      {make_env(40e-3, 100e-6)}, options);
    const auto poor = search_mappings(model, mcu,
                                      {make_env(2e-3, 100e-6)}, options);
    ASSERT_TRUE(rich.feasible);
    ASSERT_TRUE(poor.feasible);
    // §III-B3: "in the case of low environmental energy each layer of the
    // network will be divided into a larger number of tiles."
    EXPECT_GE(poor.cost.n_tile, rich.cost.n_tile);
}

TEST(MappingSearchTest, FeasibilityMustHoldInAllEnvironments)
{
    const auto model = dnn::make_cifar10_cnn();
    const hw::Msp430Lea mcu;
    const MappingSearchOptions options;
    // The darker environment binds: searching with both must produce a
    // plan whose worst tile fits the darker cycle budget.
    const auto both = search_mappings(
        model, mcu, {make_env(40e-3, 100e-6), make_env(2e-3, 100e-6)},
        options);
    ASSERT_TRUE(both.feasible);
    const sim::EnergyEnv dark = make_env(2e-3, 100e-6);
    const double budget =
        sim::cycle_budget(dark, both.cost.max_tile_time_s());
    EXPECT_LE(both.cost.max_tile_energy_j(), budget * (1.0 + 1e-9));
}

TEST(MappingSearchTest, ImpossibleEnvironmentReportsViolation)
{
    const auto model = dnn::make_cifar10_cnn();
    const hw::Msp430Lea mcu;
    // Leakage-dominated: 10 mF at 0.05 mW harvest can never run.
    const auto result = search_mappings(
        model, mcu, {make_env(0.05e-3, 10e-3)}, MappingSearchOptions{});
    EXPECT_FALSE(result.feasible);
    EXPECT_GT(result.violation_j, 0.0);
}

TEST(MappingSearchTest, RestrictsToSupportedDataflows)
{
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;  // supports WS and OS only
    const auto result = search_mappings(model, mcu, {make_env(16e-3)},
                                        MappingSearchOptions{});
    for (const auto& mapping : result.mappings) {
        EXPECT_TRUE(mapping.dataflow ==
                        dataflow::Dataflow::kWeightStationary ||
                    mapping.dataflow ==
                        dataflow::Dataflow::kOutputStationary);
    }
}

TEST(MappingSearchTest, GeneticStrategyIsCompetitive)
{
    const auto model = dnn::make_har_cnn();
    const hw::Msp430Lea mcu;
    MappingSearchOptions exhaustive;
    MappingSearchOptions genetic;
    genetic.strategy = MappingSearchOptions::Strategy::kGenetic;
    genetic.ga_population = 24;
    genetic.ga_generations = 12;
    genetic.seed = 9;
    const auto envs = {make_env(8e-3)};
    const auto a = search_mappings(model, mcu, envs, exhaustive);
    const auto b = search_mappings(model, mcu, envs, genetic);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    // GA should land within 2x of exhaustive energy.
    EXPECT_LT(b.cost.total_energy_j(),
              a.cost.total_energy_j() * 2.0);
}

TEST(MappingSearchTest, AcceleratorSearchUsesTaxonomyChoice)
{
    const auto model = dnn::make_alexnet();
    hw::ReconfigurableAccelerator::Config config;
    config.arch = hw::AcceleratorArch::kEyeriss;
    config.n_pe = 64;
    config.cache_bytes_per_pe = 512;
    const hw::ReconfigurableAccelerator accel(config);
    const auto result = search_mappings(
        model, accel, {make_env(40e-3, 1e-3)}, MappingSearchOptions{});
    EXPECT_EQ(result.mappings.size(), model.layer_count());
    EXPECT_GT(result.evaluations, 100);
}

TEST(MappingSearchTest, DeterministicForSeed)
{
    const auto model = dnn::make_har_cnn();
    const hw::Msp430Lea mcu;
    MappingSearchOptions options;
    options.strategy = MappingSearchOptions::Strategy::kGenetic;
    options.seed = 17;
    const auto envs = {make_env(8e-3)};
    const auto a = search_mappings(model, mcu, envs, options);
    const auto b = search_mappings(model, mcu, envs, options);
    EXPECT_DOUBLE_EQ(a.cost.total_energy_j(), b.cost.total_energy_j());
}

TEST(MappingSearchTest, TableIvWorkloadsFitMspFram)
{
    const hw::Msp430Lea mcu;
    for (const auto& name : dnn::table4_workloads()) {
        const auto model = dnn::make_model(name);
        const auto result = search_mappings(
            model, mcu, {make_env(16e-3)}, MappingSearchOptions{});
        EXPECT_TRUE(result.feasible) << name << ": "
                                     << result.failure.message();
    }
}

TEST(MappingSearchTest, OversizedModelFailsFramCapacity)
{
    // AlexNet's 61M weights cannot fit the MSP430's 256 KiB FRAM.
    const hw::Msp430Lea mcu;
    const auto model = dnn::make_alexnet();
    const auto result = search_mappings(model, mcu, {make_env(16e-3)},
                                        MappingSearchOptions{});
    EXPECT_FALSE(result.feasible);
    EXPECT_EQ(result.failure.code,
              fault::FailureCode::kNvmCapacityExceeded);
}

TEST(MappingSearchTest, AcceleratorNvmIsUnlimited)
{
    hw::ReconfigurableAccelerator::Config config;
    const hw::ReconfigurableAccelerator accel(config);
    EXPECT_EQ(accel.nvm_capacity_bytes(), 0);  // provisioned externally
}

TEST(MappingSearchDeathTest, EmptyEnvironmentsAreFatal)
{
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;
    EXPECT_EXIT(
        search_mappings(model, mcu, {}, MappingSearchOptions{}),
        ::testing::ExitedWithCode(1), "environment");
}

}  // namespace
}  // namespace chrysalis::search

/// \file
/// Tests for Pareto-front extraction and the hypervolume indicator.

#include "search/pareto.hpp"

#include <gtest/gtest.h>

namespace chrysalis::search {
namespace {

TEST(ParetoTest, DominationRules)
{
    EXPECT_TRUE(dominates({1.0, 1.0, 0}, {2.0, 2.0, 0}));
    EXPECT_TRUE(dominates({1.0, 2.0, 0}, {2.0, 2.0, 0}));
    EXPECT_FALSE(dominates({1.0, 3.0, 0}, {2.0, 2.0, 0}));  // tradeoff
    EXPECT_FALSE(dominates({2.0, 2.0, 0}, {2.0, 2.0, 0}));  // equal
}

TEST(ParetoTest, EmptyInput)
{
    EXPECT_TRUE(pareto_front({}).empty());
}

TEST(ParetoTest, SinglePoint)
{
    const auto front = pareto_front({{3.0, 4.0, 7}});
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].tag, 7u);
}

TEST(ParetoTest, ExtractsFront)
{
    // Points: (1,5) (2,3) (3,4) (4,1) (5,2) -> front (1,5)(2,3)(4,1).
    const auto front = pareto_front({{1, 5, 0},
                                     {2, 3, 1},
                                     {3, 4, 2},
                                     {4, 1, 3},
                                     {5, 2, 4}});
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].tag, 0u);
    EXPECT_EQ(front[1].tag, 1u);
    EXPECT_EQ(front[2].tag, 3u);
}

TEST(ParetoTest, FrontIsSortedByX)
{
    const auto front = pareto_front(
        {{5, 1, 0}, {1, 5, 1}, {3, 3, 2}, {2, 4, 3}, {4, 2, 4}});
    for (std::size_t i = 1; i < front.size(); ++i) {
        EXPECT_LT(front[i - 1].x, front[i].x);
        EXPECT_GT(front[i - 1].y, front[i].y);
    }
}

TEST(ParetoTest, DuplicatePointsKeepOneRepresentative)
{
    const auto front = pareto_front({{1, 1, 0}, {1, 1, 1}, {1, 1, 2}});
    EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoTest, SameXKeepsLowerY)
{
    const auto front = pareto_front({{2, 9, 0}, {2, 3, 1}});
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].tag, 1u);
}

TEST(ParetoTest, AllDominatedCollapseToOne)
{
    const auto front = pareto_front(
        {{1, 1, 0}, {2, 2, 1}, {3, 3, 2}, {4, 4, 3}});
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].tag, 0u);
}

TEST(HypervolumeTest, SinglePointRectangle)
{
    const std::vector<ParetoPoint> front = {{2.0, 3.0, 0}};
    EXPECT_DOUBLE_EQ(hypervolume(front, 10.0, 10.0), 8.0 * 7.0);
}

TEST(HypervolumeTest, TwoPointStaircase)
{
    const std::vector<ParetoPoint> front = {{1.0, 4.0, 0}, {3.0, 2.0, 1}};
    // (10-3)*(10-2) + (3-1)*(10-4) = 56 + 12 = 68.
    EXPECT_DOUBLE_EQ(hypervolume(front, 10.0, 10.0), 68.0);
}

TEST(HypervolumeTest, BetterFrontHasLargerVolume)
{
    const auto worse = pareto_front({{4.0, 4.0, 0}});
    const auto better = pareto_front({{2.0, 2.0, 0}});
    EXPECT_GT(hypervolume(better, 10.0, 10.0),
              hypervolume(worse, 10.0, 10.0));
}

TEST(HypervolumeDeathTest, OutsideReferenceBoxPanics)
{
    const std::vector<ParetoPoint> front = {{11.0, 1.0, 0}};
    EXPECT_DEATH(hypervolume(front, 10.0, 10.0), "outside reference");
}

}  // namespace
}  // namespace chrysalis::search

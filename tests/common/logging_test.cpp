/// \file
/// Tests for log-level gating and fatal/panic termination behaviour.

#include "common/logging.hpp"

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace chrysalis {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = log_level(); }
    void TearDown() override { set_log_level(saved_); }

  private:
    LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips)
{
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(LogLevel::kSilent);
    EXPECT_EQ(log_level(), LogLevel::kSilent);
}

TEST_F(LoggingTest, WarnPrintsAtWarnLevel)
{
    set_log_level(LogLevel::kWarn);
    ::testing::internal::CaptureStderr();
    warn("capacitor ", 100, " uF leaks");
    const std::string output = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(output.find("[chrysalis:warn]"), std::string::npos);
    EXPECT_NE(output.find("capacitor 100 uF leaks"), std::string::npos);
}

TEST_F(LoggingTest, InformSuppressedAtWarnLevel)
{
    set_log_level(LogLevel::kWarn);
    ::testing::internal::CaptureStderr();
    inform("should not appear");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, InformPrintsAtInformLevel)
{
    set_log_level(LogLevel::kInform);
    ::testing::internal::CaptureStderr();
    inform("search finished");
    const std::string output = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(output.find("search finished"), std::string::npos);
}

TEST_F(LoggingTest, SilentSuppressesEverything)
{
    set_log_level(LogLevel::kSilent);
    ::testing::internal::CaptureStderr();
    warn("hidden");
    debug("hidden");
    inform("hidden");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, SinkReceivesLevelAndMessage)
{
    set_log_level(LogLevel::kWarn);
    std::vector<std::pair<LogLevel, std::string>> records;
    set_log_sink([&](LogLevel level, std::string_view message) {
        records.emplace_back(level, std::string(message));
    });
    warn("watch out");
    inform("filtered");  // below threshold: never reaches the sink
    set_log_sink({});
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].first, LogLevel::kWarn);
    EXPECT_EQ(records[0].second, "watch out");
}

TEST_F(LoggingTest, EmptySinkRestoresStderr)
{
    set_log_level(LogLevel::kWarn);
    set_log_sink([](LogLevel, std::string_view) {});
    set_log_sink({});
    ::testing::internal::CaptureStderr();
    warn("back on stderr");
    EXPECT_NE(::testing::internal::GetCapturedStderr().find(
                  "back on stderr"),
              std::string::npos);
}

TEST_F(LoggingTest, ConcurrentLoggingKeepsRecordsWhole)
{
    // N threads racing on the logger: the sink runs under the logging
    // mutex, so we must see exactly N*M records and every one intact.
    set_log_level(LogLevel::kInform);
    std::vector<std::string> records;
    set_log_sink([&](LogLevel, std::string_view message) {
        records.push_back(std::string(message));
    });

    constexpr int kThreads = 8;
    constexpr int kMessages = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int m = 0; m < kMessages; ++m)
                inform("thread ", t, " message ", m, " end");
        });
    }
    for (auto& thread : threads)
        thread.join();
    set_log_sink({});

    ASSERT_EQ(records.size(),
              static_cast<std::size_t>(kThreads) * kMessages);
    for (const std::string& record : records) {
        EXPECT_EQ(record.rfind("thread ", 0), 0u) << record;
        EXPECT_NE(record.find(" end"), std::string::npos) << record;
    }
}

TEST(ParseLogLevelTest, AcceptsAllSpellings)
{
    const struct {
        const char* name;
        LogLevel expected;
    } cases[] = {
        {"debug", LogLevel::kDebug},    {"info", LogLevel::kInform},
        {"inform", LogLevel::kInform},  {"warn", LogLevel::kWarn},
        {"warning", LogLevel::kWarn},   {"error", LogLevel::kError},
        {"silent", LogLevel::kSilent},  {"none", LogLevel::kSilent},
        {"off", LogLevel::kSilent},     {"DEBUG", LogLevel::kDebug},
        {"Info", LogLevel::kInform},    {"WARN", LogLevel::kWarn},
    };
    for (const auto& c : cases) {
        LogLevel level = LogLevel::kWarn;
        EXPECT_TRUE(parse_log_level(c.name, level)) << c.name;
        EXPECT_EQ(level, c.expected) << c.name;
    }
}

TEST(ParseLogLevelTest, RejectsUnknownNamesWithoutClobbering)
{
    LogLevel level = LogLevel::kError;
    EXPECT_FALSE(parse_log_level("verbose", level));
    EXPECT_FALSE(parse_log_level("", level));
    EXPECT_FALSE(parse_log_level("warn ", level));  // no trimming
    EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingDeathTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config: ", 42), ::testing::ExitedWithCode(1),
                "bad config: 42");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant violated"), "invariant violated");
}

TEST(FatalThrowGuardTest, GuardTurnsFatalIntoException)
{
    EXPECT_FALSE(FatalThrowGuard::active());
    FatalThrowGuard guard;
    EXPECT_TRUE(FatalThrowGuard::active());
    bool caught = false;
    try {
        fatal("recoverable: ", 7);
    } catch (const FatalError& error) {
        caught = true;
        EXPECT_NE(std::string(error.what()).find("recoverable: 7"),
                  std::string::npos);
    }
    EXPECT_TRUE(caught);
}

TEST(FatalThrowGuardTest, GuardsNestAndUnwindCorrectly)
{
    EXPECT_FALSE(FatalThrowGuard::active());
    {
        FatalThrowGuard outer;
        {
            FatalThrowGuard inner;
            EXPECT_TRUE(FatalThrowGuard::active());
        }
        // Still active: the outer guard is alive.
        EXPECT_TRUE(FatalThrowGuard::active());
        EXPECT_THROW(fatal("still guarded"), FatalError);
    }
    EXPECT_FALSE(FatalThrowGuard::active());
}

TEST(FatalThrowGuardTest, GuardIsThreadLocal)
{
    // A guard on this thread must not alter fatal() on another thread.
    FatalThrowGuard guard;
    bool other_thread_active = true;
    std::thread([&] {
        other_thread_active = FatalThrowGuard::active();
    }).join();
    EXPECT_FALSE(other_thread_active);
}

TEST(FatalThrowGuardDeathTest, FatalStillExitsWithoutGuard)
{
    // With no live guard, fatal() keeps its exit(1) contract.
    { FatalThrowGuard expired; }
    EXPECT_EXIT(fatal("unguarded"), ::testing::ExitedWithCode(1),
                "unguarded");
}

}  // namespace
}  // namespace chrysalis

/// \file
/// Tests for log-level gating and fatal/panic termination behaviour.

#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace chrysalis {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = log_level(); }
    void TearDown() override { set_log_level(saved_); }

  private:
    LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips)
{
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(LogLevel::kSilent);
    EXPECT_EQ(log_level(), LogLevel::kSilent);
}

TEST_F(LoggingTest, WarnPrintsAtWarnLevel)
{
    set_log_level(LogLevel::kWarn);
    ::testing::internal::CaptureStderr();
    warn("capacitor ", 100, " uF leaks");
    const std::string output = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(output.find("[chrysalis:warn]"), std::string::npos);
    EXPECT_NE(output.find("capacitor 100 uF leaks"), std::string::npos);
}

TEST_F(LoggingTest, InformSuppressedAtWarnLevel)
{
    set_log_level(LogLevel::kWarn);
    ::testing::internal::CaptureStderr();
    inform("should not appear");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, InformPrintsAtInformLevel)
{
    set_log_level(LogLevel::kInform);
    ::testing::internal::CaptureStderr();
    inform("search finished");
    const std::string output = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(output.find("search finished"), std::string::npos);
}

TEST_F(LoggingTest, SilentSuppressesEverything)
{
    set_log_level(LogLevel::kSilent);
    ::testing::internal::CaptureStderr();
    warn("hidden");
    debug("hidden");
    inform("hidden");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingDeathTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config: ", 42), ::testing::ExitedWithCode(1),
                "bad config: 42");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant violated"), "invariant violated");
}

}  // namespace
}  // namespace chrysalis

/// \file
/// Tests for the text-table renderer and CSV export.

#include "common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace chrysalis {
namespace {

TEST(TextTableTest, RendersHeadersAndRows)
{
    TextTable table({"name", "value"});
    table.add_row({"alpha", "1"});
    table.add_row({"beta", "22"});
    const std::string out = table.to_string();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, TitleAppearsFirst)
{
    TextTable table({"a"});
    table.set_title("Figure 9: capacitor sweep");
    table.add_row({"x"});
    const std::string out = table.to_string();
    EXPECT_EQ(out.find("Figure 9"), 0u);
}

TEST(TextTableTest, ColumnsWidenToLongestCell)
{
    TextTable table({"h"});
    table.add_row({"a-very-long-cell-value"});
    const std::string out = table.to_string();
    // Every rendered line should have the same width.
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TextTableTest, ShortRowsArePadded)
{
    TextTable table({"a", "b", "c"});
    table.add_row({"only-one"});
    EXPECT_NO_THROW(table.to_string());
}

TEST(TextTableTest, CsvOutput)
{
    TextTable table({"x", "y"});
    table.add_row({"1", "2"});
    table.add_row({"3", "4"});
    std::ostringstream os;
    table.print_csv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(TextTableTest, CsvEscapesSpecialCharacters)
{
    TextTable table({"field"});
    table.add_row({"has,comma"});
    table.add_row({"has\"quote"});
    std::ostringstream os;
    table.print_csv(os);
    EXPECT_EQ(os.str(),
              "field\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(TextTableTest, EmptyTableStillRendersHeader)
{
    TextTable table({"lonely"});
    const std::string out = table.to_string();
    EXPECT_NE(out.find("lonely"), std::string::npos);
}

}  // namespace
}  // namespace chrysalis

/// \file
/// Tests for the stable evaluation-key hash: determinism, sensitivity to
/// value and order, and the floating-point normalization rules.

#include "common/stable_hash.hpp"

#include <gtest/gtest.h>

namespace chrysalis {
namespace {

TEST(StableHashTest, SameInputsSameKey)
{
    StableHash a;
    a.add(std::uint64_t{1}).add(2.5).add(std::string_view("model"));
    StableHash b;
    b.add(std::uint64_t{1}).add(2.5).add(std::string_view("model"));
    EXPECT_EQ(a.key(), b.key());
}

TEST(StableHashTest, DifferentValuesDifferentKey)
{
    StableHash a;
    a.add(std::uint64_t{1});
    StableHash b;
    b.add(std::uint64_t{2});
    EXPECT_FALSE(a.key() == b.key());
}

TEST(StableHashTest, OrderMatters)
{
    StableHash ab;
    ab.add(std::uint64_t{1}).add(std::uint64_t{2});
    StableHash ba;
    ba.add(std::uint64_t{2}).add(std::uint64_t{1});
    EXPECT_FALSE(ab.key() == ba.key());
}

TEST(StableHashTest, NegativeZeroEqualsPositiveZero)
{
    StableHash pos;
    pos.add(0.0);
    StableHash neg;
    neg.add(-0.0);
    EXPECT_EQ(pos.key(), neg.key());
}

TEST(StableHashTest, StringsAreLengthPrefixed)
{
    // "ab" + "c" must differ from "a" + "bc".
    StableHash a;
    a.add(std::string_view("ab")).add(std::string_view("c"));
    StableHash b;
    b.add(std::string_view("a")).add(std::string_view("bc"));
    EXPECT_FALSE(a.key() == b.key());
}

TEST(StableHashTest, LongStringsHashStably)
{
    const std::string text(1000, 'x');
    StableHash a;
    a.add(std::string_view(text));
    StableHash b;
    b.add(std::string_view(text));
    EXPECT_EQ(a.key(), b.key());

    std::string other = text;
    other[999] = 'y';
    StableHash c;
    c.add(std::string_view(other));
    EXPECT_FALSE(a.key() == c.key());
}

TEST(StableHashTest, RangeIncludesLength)
{
    // {1} then {2} must differ from {1, 2} then {}.
    StableHash a;
    a.add_range(std::vector<double>{1.0});
    a.add_range(std::vector<double>{2.0});
    StableHash b;
    b.add_range(std::vector<double>{1.0, 2.0});
    b.add_range(std::vector<double>{});
    EXPECT_FALSE(a.key() == b.key());
}

TEST(StableHashTest, CopyForksTheState)
{
    StableHash base;
    base.add(std::uint64_t{7});
    StableHash fork_a = base;
    fork_a.add(std::uint64_t{1});
    StableHash fork_b = base;
    fork_b.add(std::uint64_t{1});
    EXPECT_EQ(fork_a.key(), fork_b.key());
    EXPECT_FALSE(fork_a.key() == base.key());
}

TEST(StableHashTest, EmptyAndNonEmptyDiffer)
{
    StableHash empty;
    StableHash one;
    one.add(std::uint64_t{0});
    EXPECT_FALSE(empty.key() == one.key());
}

}  // namespace
}  // namespace chrysalis

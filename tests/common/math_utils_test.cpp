/// \file
/// Tests for numeric helpers: divisors, interpolation, statistics.

#include "common/math_utils.hpp"

#include <gtest/gtest.h>

namespace chrysalis {
namespace {

TEST(DivisorsTest, One)
{
    EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
}

TEST(DivisorsTest, Prime)
{
    EXPECT_EQ(divisors(13), (std::vector<std::int64_t>{1, 13}));
}

TEST(DivisorsTest, PerfectSquare)
{
    EXPECT_EQ(divisors(36),
              (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(DivisorsTest, Composite)
{
    EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
}

class DivisorsPropertyTest : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(DivisorsPropertyTest, AllDivideEvenlyAndSorted)
{
    const std::int64_t n = GetParam();
    const auto divs = divisors(n);
    ASSERT_FALSE(divs.empty());
    EXPECT_EQ(divs.front(), 1);
    EXPECT_EQ(divs.back(), n);
    for (std::size_t i = 0; i < divs.size(); ++i) {
        EXPECT_EQ(n % divs[i], 0) << "divisor " << divs[i];
        if (i > 0) {
            EXPECT_LT(divs[i - 1], divs[i]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DivisorsPropertyTest,
                         ::testing::Values(1, 2, 7, 16, 55, 96, 128, 168,
                                           224, 1000, 4096));

TEST(CeilDivTest, ExactAndInexact)
{
    EXPECT_EQ(ceil_div(10, 5), 2);
    EXPECT_EQ(ceil_div(11, 5), 3);
    EXPECT_EQ(ceil_div(1, 5), 1);
    EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(ClampTest, Basic)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(11.0, 0.0, 10.0), 10.0);
}

TEST(ApproxEqualTest, ScaledTolerance)
{
    EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
    EXPECT_TRUE(approx_equal(1e9, 1e9 + 1.0 - 0.5, 1e-9));
    EXPECT_FALSE(approx_equal(1.0, 1.1));
    EXPECT_TRUE(approx_equal(0.0, 0.0));
}

TEST(LerpTest, Endpoints)
{
    EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 1.0), 6.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 0.5), 4.0);
}

TEST(InterpTraceTest, InteriorAndClamping)
{
    const std::vector<double> xs = {0.0, 1.0, 3.0};
    const std::vector<double> ys = {10.0, 20.0, 0.0};
    EXPECT_DOUBLE_EQ(interp_trace(xs, ys, -1.0), 10.0);
    EXPECT_DOUBLE_EQ(interp_trace(xs, ys, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(interp_trace(xs, ys, 0.5), 15.0);
    EXPECT_DOUBLE_EQ(interp_trace(xs, ys, 2.0), 10.0);
    EXPECT_DOUBLE_EQ(interp_trace(xs, ys, 3.0), 0.0);
    EXPECT_DOUBLE_EQ(interp_trace(xs, ys, 99.0), 0.0);
}

TEST(SummarizeTest, EmptyInput)
{
    const SummaryStats stats = summarize({});
    EXPECT_EQ(stats.count, 0u);
    EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(SummarizeTest, SingleElement)
{
    const SummaryStats stats = summarize({5.0});
    EXPECT_EQ(stats.count, 1u);
    EXPECT_DOUBLE_EQ(stats.min, 5.0);
    EXPECT_DOUBLE_EQ(stats.max, 5.0);
    EXPECT_DOUBLE_EQ(stats.mean, 5.0);
    EXPECT_DOUBLE_EQ(stats.median, 5.0);
    EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(SummarizeTest, KnownDistribution)
{
    const SummaryStats stats = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(stats.mean, 2.5);
    EXPECT_DOUBLE_EQ(stats.median, 2.5);
    EXPECT_DOUBLE_EQ(stats.min, 1.0);
    EXPECT_DOUBLE_EQ(stats.max, 4.0);
    EXPECT_NEAR(stats.stddev, 1.118, 1e-3);
}

TEST(SummarizeTest, OddCountMedian)
{
    const SummaryStats stats = summarize({9.0, 1.0, 5.0});
    EXPECT_DOUBLE_EQ(stats.median, 5.0);
}

TEST(GeometricMeanTest, Basics)
{
    EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
    EXPECT_DOUBLE_EQ(geometric_mean({4.0}), 4.0);
    EXPECT_NEAR(geometric_mean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-9);
}

TEST(RelativeImprovementTest, Directions)
{
    EXPECT_NEAR(relative_improvement(100.0, 50.0), 0.5, 1e-12);
    EXPECT_NEAR(relative_improvement(100.0, 100.0), 0.0, 1e-12);
    EXPECT_NEAR(relative_improvement(100.0, 150.0), -0.5, 1e-12);
}

}  // namespace
}  // namespace chrysalis

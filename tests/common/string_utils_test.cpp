/// \file
/// Tests for string formatting helpers.

#include "common/string_utils.hpp"

#include <gtest/gtest.h>

namespace chrysalis {
namespace {

TEST(FormatFixedTest, Rounding)
{
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(3.145, 2), "3.15");
    EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(FormatSiTest, PrefixSelection)
{
    EXPECT_EQ(format_si(3.2e-3, "J"), "3.200 mJ");
    EXPECT_EQ(format_si(1.5, "W", 1), "1.5 W");
    EXPECT_EQ(format_si(2.5e6, "B", 1), "2.5 MB");
    EXPECT_EQ(format_si(4.2e-6, "F", 1), "4.2 uF");
    EXPECT_EQ(format_si(7e-10, "J", 1), "700.0 pJ");
}

TEST(FormatSiTest, ZeroAndNegative)
{
    EXPECT_EQ(format_si(0.0, "J", 1), "0.0 J");
    EXPECT_EQ(format_si(-2.0e-3, "A", 1), "-2.0 mA");
}

TEST(FormatSiTest, TinyValuesUseSmallestPrefix)
{
    EXPECT_EQ(format_si(5e-13, "J", 1), "0.5 pJ");
}

TEST(FormatPercentTest, Basics)
{
    EXPECT_EQ(format_percent(0.564), "56.4%");
    EXPECT_EQ(format_percent(1.0, 0), "100%");
    EXPECT_EQ(format_percent(0.005, 1), "0.5%");
}

TEST(SplitTest, Basic)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFields)
{
    EXPECT_EQ(split(",a,,b,", ','),
              (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(SplitTest, NoDelimiter)
{
    EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(TrimTest, Whitespace)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nworld\r "), "world");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(PadTest, RightPadding)
{
    EXPECT_EQ(pad_right("ab", 5), "ab   ");
    EXPECT_EQ(pad_right("abcdef", 3), "abc");
}

TEST(PadTest, LeftPadding)
{
    EXPECT_EQ(pad_left("42", 5), "   42");
    EXPECT_EQ(pad_left("123456", 3), "123456");
}

TEST(ToLowerTest, MixedCase)
{
    EXPECT_EQ(to_lower("TPU"), "tpu");
    EXPECT_EQ(to_lower("EyeRiss-V1"), "eyeriss-v1");
}

}  // namespace
}  // namespace chrysalis

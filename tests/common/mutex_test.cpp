// Tests for the annotated locking primitives (common/mutex.hpp): RAII
// exclusion under contention and the explicit-predicate-loop CondVar
// handshake. The *annotations* are proven by the clang thread-safety
// CI job; these tests pin the runtime behavior of the wrappers.
#include "common/mutex.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace chrysalis {
namespace {

TEST(Mutex, MutexLockExcludesConcurrentWriters)
{
    Mutex mutex;
    long counter = 0;
    constexpr int kThreads = 8;
    constexpr int kIterations = 10000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIterations; ++i) {
                MutexLock lock(mutex);
                ++counter;
            }
        });
    }
    for (std::thread& thread : threads)
        thread.join();
    EXPECT_EQ(counter, static_cast<long>(kThreads) * kIterations);
}

TEST(Mutex, CondVarHandshake)
{
    Mutex mutex;
    CondVar cv;
    int stage = 0;  // 0 = idle, 1 = request sent, 2 = reply sent

    std::thread responder([&] {
        MutexLock lock(mutex);
        while (stage != 1)
            cv.wait(mutex);
        stage = 2;
        cv.notify_all();
    });

    {
        MutexLock lock(mutex);
        stage = 1;
        cv.notify_all();
        while (stage != 2)
            cv.wait(mutex);
        EXPECT_EQ(stage, 2);
    }
    responder.join();
}

TEST(Mutex, CondVarNotifyOneWakesAWaiter)
{
    Mutex mutex;
    CondVar cv;
    int ready = 0;
    int consumed = 0;
    constexpr int kWaiters = 4;

    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int t = 0; t < kWaiters; ++t) {
        waiters.emplace_back([&] {
            MutexLock lock(mutex);
            while (ready == 0)
                cv.wait(mutex);
            --ready;
            ++consumed;
        });
    }
    for (int t = 0; t < kWaiters; ++t) {
        MutexLock lock(mutex);
        ++ready;
        cv.notify_one();
    }
    for (std::thread& waiter : waiters)
        waiter.join();
    EXPECT_EQ(consumed, kWaiters);
    EXPECT_EQ(ready, 0);
}

}  // namespace
}  // namespace chrysalis

/// \file
/// Sanity checks for the unit constants — cheap insurance against a
/// transposed exponent silently corrupting every physical quantity.

#include "common/units.hpp"

#include <gtest/gtest.h>

namespace chrysalis::units {
namespace {

TEST(UnitsTest, PrefixLadder)
{
    EXPECT_DOUBLE_EQ(kGiga, 1e9);
    EXPECT_DOUBLE_EQ(kMega * kMicro, 1.0);
    EXPECT_DOUBLE_EQ(kKilo * kMilli, 1.0);
    EXPECT_DOUBLE_EQ(kNano * kGiga, 1.0);
    EXPECT_DOUBLE_EQ(kPico, 1e-12);
}

TEST(UnitsTest, TimeConversions)
{
    EXPECT_DOUBLE_EQ(kMinute, 60.0 * kSecond);
    EXPECT_DOUBLE_EQ(kHour, 60.0 * kMinute);
    EXPECT_DOUBLE_EQ(kMillisecond * 1000.0, kSecond);
}

TEST(UnitsTest, EnergyAndPowerAreConsistent)
{
    // 1 mW for 1 s is 1 mJ.
    EXPECT_DOUBLE_EQ(1.0 * kMilliWatt * kSecond, 1.0 * kMilliJoule);
    EXPECT_DOUBLE_EQ(kMicroJoule * kMega, kJoule);
}

TEST(UnitsTest, DataSizes)
{
    EXPECT_DOUBLE_EQ(kKiB, 1024.0);
    EXPECT_DOUBLE_EQ(kMiB, 1024.0 * kKiB);
}

TEST(UnitsTest, PaperScaleSpotChecks)
{
    // Table IV ranges expressed through the constants.
    EXPECT_DOUBLE_EQ(10.0 * kMilliFarad / (1.0 * kMicroFarad), 1e4);
    // A 100 uF capacitor at 5 V stores 1.25 mJ.
    const double energy = 0.5 * (100 * kMicroFarad) * 5.0 * 5.0;
    EXPECT_NEAR(energy, 1.25 * kMilliJoule, 1e-12);
}

}  // namespace
}  // namespace chrysalis::units

/// \file
/// Edge cases of the flat-JSON scanner/emitters shared by the campaign
/// journal and the serve-v1 wire protocol: duplicate keys, empty
/// objects, nesting (rejected at any depth), non-ASCII round-trips and
/// torn input. The scanner's contract is conservative — any structural
/// problem returns false — because both callers would rather drop a
/// journal line or reply `bad_frame` than guess.

#include "common/flat_json.hpp"

#include <string>

#include <gtest/gtest.h>

namespace chrysalis {
namespace {

TEST(FlatJson, DuplicateKeysKeepTheFirstOccurrence)
{
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(R"({"k":"first","k":"second","m":1})",
                               fields));
    EXPECT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields.at("k"), "first");
    EXPECT_EQ(fields.at("m"), "1");
}

TEST(FlatJson, DuplicateNumericKeysKeepTheFirstSpelling)
{
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(R"({"n":1,"n":2,"n":3})", fields));
    EXPECT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields.at("n"), "1");
}

TEST(FlatJson, EmptyObjectScansToNoFields)
{
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json("{}", fields));
    EXPECT_TRUE(fields.empty());
}

TEST(FlatJson, EmptyObjectWithInteriorWhitespaceScans)
{
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json("  {   }", fields));
    EXPECT_TRUE(fields.empty());
}

TEST(FlatJson, NestedObjectValueIsRejected)
{
    // "Flat" is load-bearing: without the depth check a single-field
    // nested object used to scan "successfully" into mangled fields.
    FlatJsonFields fields;
    EXPECT_FALSE(scan_flat_json(R"({"a":{"b":1}})", fields));
    EXPECT_FALSE(scan_flat_json(R"({"a":{"b":1,"c":2}})", fields));
    EXPECT_FALSE(scan_flat_json(R"({"a":{}})", fields));
}

TEST(FlatJson, DeeplyNestedValueIsRejectedAtTheFirstBrace)
{
    std::string line = R"({"a":)";
    for (int depth = 0; depth < 64; ++depth)
        line += R"({"b":)";
    line += '1';
    for (int depth = 0; depth <= 64; ++depth)
        line += '}';
    FlatJsonFields fields;
    EXPECT_FALSE(scan_flat_json(line, fields));
}

TEST(FlatJson, ArrayValueIsRejected)
{
    FlatJsonFields fields;
    EXPECT_FALSE(scan_flat_json(R"({"a":[1,2]})", fields));
    EXPECT_FALSE(scan_flat_json(R"({"a":[]})", fields));
}

TEST(FlatJson, NonAsciiStringValueRoundTrips)
{
    // UTF-8 bytes are >= 0x80 and pass through both the escaper and
    // the scanner verbatim — the wire stays valid UTF-8 JSON.
    const std::string text = "aut\xC3\xB3nomo \xE2\x9A\xA1 \xF0\x9F\x94\x8B";
    std::string object = "{";
    json_append_field(object, "label", text);
    object += '}';
    EXPECT_EQ(object.find('\\'), std::string::npos);

    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(object, fields));
    EXPECT_EQ(fields.at("label"), text);
}

TEST(FlatJson, ControlCharactersEscapeAndRoundTrip)
{
    const std::string text = "a\tb\nc\rd\x01" "e\"f\\g";
    std::string object = "{";
    json_append_field(object, "v", text);
    object += '}';
    EXPECT_NE(object.find("\\u0001"), std::string::npos);

    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(object, fields));
    EXPECT_EQ(fields.at("v"), text);
}

TEST(FlatJson, UnicodeEscapeDecodes)
{
    // In a raw string the escape below is six literal characters --
    // the scanner, not the compiler, performs the decode.
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(R"({"v":"A\u0009B"})", fields));
    EXPECT_EQ(fields.at("v"), "A\tB");
}

TEST(FlatJson, TornInputIsRejected)
{
    FlatJsonFields fields;
    // A killed journal writer or truncated frame can tear a line at
    // any byte; every prefix must scan false, never half-parse.
    const std::string line = R"({"k":"value","n":42})";
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
        FlatJsonFields partial;
        EXPECT_FALSE(scan_flat_json(line.substr(0, cut), partial))
            << "prefix of " << cut << " bytes scanned successfully";
    }
    ASSERT_TRUE(scan_flat_json(line, fields));
    EXPECT_EQ(fields.at("k"), "value");
    EXPECT_EQ(fields.at("n"), "42");
}

TEST(FlatJson, StructuralGarbageIsRejected)
{
    FlatJsonFields fields;
    EXPECT_FALSE(scan_flat_json("", fields));
    EXPECT_FALSE(scan_flat_json("null", fields));
    EXPECT_FALSE(scan_flat_json(R"({"k" "v"})", fields));
    EXPECT_FALSE(scan_flat_json(R"({"k":})", fields));
    EXPECT_FALSE(scan_flat_json(R"({"k":"v",})", fields));
    EXPECT_FALSE(scan_flat_json(R"({42:"v"})", fields));
    EXPECT_FALSE(scan_flat_json(R"({"k":"v"!})", fields));
    EXPECT_FALSE(scan_flat_json(R"({"k":"\x41"})", fields));
}

}  // namespace
}  // namespace chrysalis

/// \file
/// Unit and statistical tests for the deterministic RNG.

#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace chrysalis {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.5, 7.5);
        ASSERT_GE(v, -2.5);
        ASSERT_LT(v, 7.5);
    }
}

TEST(RngTest, UniformIntCoversFullRangeInclusive)
{
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.uniform_int(3, 8));
    EXPECT_EQ(seen.size(), 6u);
    EXPECT_EQ(*seen.begin(), 3);
    EXPECT_EQ(*seen.rbegin(), 8);
}

TEST(RngTest, UniformIntSingleton)
{
    Rng rng(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(RngTest, UniformIntIsUnbiased)
{
    Rng rng(13);
    constexpr int kBuckets = 5;
    constexpr int kN = 50000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kN; ++i)
        ++counts[rng.uniform_int(0, kBuckets - 1)];
    for (int count : counts)
        EXPECT_NEAR(count, kN / kBuckets, kN / kBuckets * 0.1);
}

TEST(RngTest, LogUniformStaysInRange)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.log_uniform(1e-6, 1e-2);
        ASSERT_GE(v, 1e-6);
        ASSERT_LE(v, 1e-2);
    }
}

TEST(RngTest, LogUniformMedianIsGeometricCenter)
{
    Rng rng(19);
    std::vector<double> samples;
    for (int i = 0; i < 10001; ++i)
        samples.push_back(rng.log_uniform(1e-6, 1e-2));
    std::nth_element(samples.begin(), samples.begin() + 5000,
                     samples.end());
    // Geometric center of [1e-6, 1e-2] is 1e-4.
    EXPECT_NEAR(std::log10(samples[5000]), -4.0, 0.1);
}

TEST(RngTest, GaussianMomentsMatch)
{
    Rng rng(23);
    constexpr int kN = 100000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < kN; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / kN, 0.0, 0.02);
    EXPECT_NEAR(sq / kN, 1.0, 0.02);
}

TEST(RngTest, GaussianScaleAndShift)
{
    Rng rng(29);
    constexpr int kN = 50000;
    double sum = 0.0;
    for (int i = 0; i < kN; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-0.5));
        EXPECT_TRUE(rng.bernoulli(1.5));
    }
}

TEST(RngTest, BernoulliRate)
{
    Rng rng(37);
    constexpr int kN = 100000;
    int hits = 0;
    for (int i = 0; i < kN; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(RngTest, WeightedIndexFollowsWeights)
{
    Rng rng(41);
    const std::vector<double> weights = {1.0, 3.0, 6.0};
    constexpr int kN = 60000;
    int counts[3] = {};
    for (int i = 0; i < kN; ++i)
        ++counts[rng.weighted_index(weights)];
    EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.02);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform)
{
    Rng rng(43);
    const std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
    std::set<std::size_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.weighted_index(weights));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(47);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = items;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkedStreamsAreDecorrelated)
{
    Rng parent(53);
    Rng child_a = parent.fork(0);
    Rng child_b = parent.fork(1);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (child_a.next_u64() == child_b.next_u64())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsRepeatable)
{
    Rng parent(59);
    Rng a = parent.fork(5);
    Rng b = parent.fork(5);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace chrysalis

/// \file
/// Tests for the closed-form evaluator (Eqs. 3, 7, 8).

#include "sim/analytic_evaluator.hpp"

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"

namespace chrysalis::sim {
namespace {

EnergyEnv
make_env(double p_eh_w, double cap_f = 100e-6)
{
    EnergyEnv env;
    env.p_eh_w = p_eh_w;
    env.capacitor.capacitance_f = cap_f;
    return env;
}

dataflow::ModelCost
kws_cost(std::int64_t tiles_k = 1)
{
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;
    std::vector<dataflow::LayerMapping> mappings(model.layer_count());
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        mappings[i].tiles_k = tiles_k;
        mappings[i].clamp_to(model.layer(i));
    }
    return dataflow::analyze_model(model, mappings, mcu.cost_params());
}

TEST(AnalyticHelpersTest, CycleStoreEnergyMatchesFormula)
{
    const EnergyEnv env = make_env(10e-3);
    // eta_dis * 1/2 C (U_on^2 - U_off^2)
    const double expected =
        0.85 * 0.5 * 100e-6 * (3.5 * 3.5 - 2.2 * 2.2);
    EXPECT_NEAR(cycle_store_energy(env), expected, 1e-12);
}

TEST(AnalyticHelpersTest, EffectivePowerDecreasesWithCapacitance)
{
    const double p_small = effective_power(make_env(10e-3, 10e-6));
    const double p_large = effective_power(make_env(10e-3, 10e-3));
    EXPECT_GT(p_small, p_large);
}

TEST(AnalyticHelpersTest, EffectivePowerNegativeWhenLeakageDominates)
{
    // 10 mF at U_on = 3.5 V leaks 0.01*0.01*12.25 = 1.2 mW; with only
    // 0.5 mW harvested the effective power is negative.
    EXPECT_LT(effective_power(make_env(0.5e-3, 10e-3)), 0.0);
}

TEST(AnalyticHelpersTest, CycleBudgetGrowsWithTileTime)
{
    const EnergyEnv env = make_env(10e-3);
    EXPECT_GT(cycle_budget(env, 1.0), cycle_budget(env, 0.0));
    EXPECT_NEAR(cycle_budget(env, 0.0), cycle_store_energy(env), 1e-12);
}

TEST(AnalyticEvaluateTest, FeasibleCaseComputesLatency)
{
    const auto cost = kws_cost();
    const AnalyticResult result = analytic_evaluate(cost, make_env(20e-3));
    ASSERT_TRUE(result.feasible) << result.failure.message();
    EXPECT_GT(result.latency_s, 0.0);
    EXPECT_NEAR(result.e_all_j, cost.total_energy_j(), 1e-12);
    // Latency respects both bounds.
    EXPECT_GE(result.latency_s, cost.time_s * (1.0 - 1e-9));
    EXPECT_GE(result.latency_s,
              result.e_all_j / result.p_eff_w * (1.0 - 1e-9));
}

TEST(AnalyticEvaluateTest, LatencyScalesInverselyWithHarvestWhenStarved)
{
    // Tiled so every tile fits one energy cycle even at 2 mW.
    const auto cost = kws_cost(/*tiles_k=*/8);
    const AnalyticResult lo = analytic_evaluate(cost, make_env(2e-3));
    const AnalyticResult hi = analytic_evaluate(cost, make_env(4e-3));
    ASSERT_TRUE(lo.feasible);
    ASSERT_TRUE(hi.feasible);
    EXPECT_GT(lo.latency_s, hi.latency_s);
}

TEST(AnalyticEvaluateTest, ComputeBoundWhenHarvestIsAbundant)
{
    const auto cost = kws_cost();
    const AnalyticResult result =
        analytic_evaluate(cost, make_env(500e-3));
    ASSERT_TRUE(result.feasible);
    // With abundant harvest the cold start is sub-millisecond and the
    // latency collapses to the active execution time.
    EXPECT_NEAR(result.latency_s, cost.time_s + result.cold_start_s,
                1e-12);
    EXPECT_LT(result.cold_start_s, 0.01 * cost.time_s);
}

TEST(AnalyticEvaluateTest, ColdStartGrowsWithCapacitance)
{
    const auto cost = kws_cost(/*tiles_k=*/8);
    const AnalyticResult small =
        analytic_evaluate(cost, make_env(10e-3, 47e-6));
    const AnalyticResult large =
        analytic_evaluate(cost, make_env(10e-3, 4.7e-3));
    ASSERT_TRUE(small.feasible);
    ASSERT_TRUE(large.feasible);
    EXPECT_GT(large.cold_start_s, small.cold_start_s * 50.0);
    EXPECT_GT(large.latency_s, small.latency_s);
}

TEST(AnalyticEvaluateTest, InfeasibleOnLeakageDominance)
{
    const auto cost = kws_cost();
    const AnalyticResult result =
        analytic_evaluate(cost, make_env(0.1e-3, 10e-3));
    EXPECT_FALSE(result.feasible);
    EXPECT_EQ(result.failure.code,
              fault::FailureCode::kLeakageDominates);
}

TEST(AnalyticEvaluateTest, InfeasibleWhenTileExceedsCycle)
{
    // Tiny capacitor and weak harvest: an untiled KWS layer cannot fit in
    // one energy cycle.
    const auto cost = kws_cost();
    const AnalyticResult result =
        analytic_evaluate(cost, make_env(0.2e-3, 1e-6));
    EXPECT_FALSE(result.feasible);
    EXPECT_EQ(result.failure.code,
              fault::FailureCode::kTileExceedsCycle);
}

TEST(AnalyticEvaluateTest, InfeasibleCostPropagates)
{
    auto cost = kws_cost();
    cost.feasible = false;
    const AnalyticResult result = analytic_evaluate(cost, make_env(20e-3));
    EXPECT_FALSE(result.feasible);
    EXPECT_EQ(result.failure.code,
              fault::FailureCode::kMappingInfeasible);
}

TEST(MinTilesEq9Test, HarvestSufficientNeedsNoSplit)
{
    // P_eff * T_body >= E_body: the layer runs off concurrent harvest.
    const EnergyEnv env = make_env(20e-3);
    EXPECT_EQ(min_tiles_eq9(1e-3, 1.0, 1e-6, env), 1);
}

TEST(MinTilesEq9Test, StorageBridgingSetsTheBound)
{
    // Deficit of (E_body - P_eff*T) must be covered in chunks of
    // (store - ckpt) each.
    const EnergyEnv env = make_env(2e-3);
    const double store = cycle_store_energy(env);
    const double p_eff = effective_power(env);
    const double e_body = p_eff * 1.0 + 4.5 * store;  // 4.5 chunks over
    EXPECT_EQ(min_tiles_eq9(e_body, 1.0, 0.0, env), 5);
}

TEST(MinTilesEq9Test, OverheadExceedingCycleIsHopeless)
{
    const EnergyEnv env = make_env(2e-3, 10e-6);
    const double store = cycle_store_energy(env);
    EXPECT_EQ(min_tiles_eq9(1.0, 0.1, store * 1.1, env), -1);
}

TEST(MinTilesEq9Test, BoundGrowsInDarkerEnvironments)
{
    // §III-B3: "in the case of low environmental energy each layer will
    // be divided into a larger number of tiles."
    const double e_body = 5e-3;
    const double t_body = 1.0;
    const auto bright = min_tiles_eq9(e_body, t_body, 10e-6,
                                      make_env(8e-3));
    const auto dark = min_tiles_eq9(e_body, t_body, 10e-6,
                                    make_env(1e-3));
    ASSERT_GT(bright, 0);
    ASSERT_GT(dark, 0);
    EXPECT_GE(dark, bright);
}

TEST(MinTilesEq9Test, ConsistentWithCycleBudget)
{
    // Splitting by the bound makes each tile fit its cycle budget; one
    // tile fewer does not.
    const EnergyEnv env = make_env(2e-3);
    const double e_body = 20e-3;
    const double t_body = 3.0;
    const double ckpt = 20e-6;
    const auto n = min_tiles_eq9(e_body, t_body, ckpt, env);
    ASSERT_GT(n, 1);
    const auto fits = [&](std::int64_t tiles) {
        const double tile_e = e_body / static_cast<double>(tiles) + ckpt;
        const double tile_t = t_body / static_cast<double>(tiles);
        return tile_e <= cycle_budget(env, tile_t) + 1e-15;
    };
    EXPECT_TRUE(fits(n));
    EXPECT_FALSE(fits(n - 1));
}

TEST(MinTilesEq9DeathTest, NegativeInputsAreFatal)
{
    const EnergyEnv env = make_env(2e-3);
    EXPECT_EXIT(min_tiles_eq9(-1.0, 1.0, 0.0, env),
                ::testing::ExitedWithCode(1), "negative");
}

TEST(AnalyticEvaluateTest, SystemEfficiencyIsFractionOfHarvest)
{
    const auto cost = kws_cost();
    const AnalyticResult result = analytic_evaluate(cost, make_env(20e-3));
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.system_efficiency, 0.0);
    EXPECT_LT(result.system_efficiency, 1.0);
    EXPECT_NEAR(result.e_harvest_j, 20e-3 * result.latency_s, 1e-12);
}

TEST(AnalyticEvaluateTest, BiggerPanelNeverHurtsLatency)
{
    const auto cost = kws_cost(/*tiles_k=*/8);
    double prev = 1e300;
    for (double p : {1e-3, 2e-3, 5e-3, 10e-3, 50e-3}) {
        const AnalyticResult result = analytic_evaluate(cost, make_env(p));
        ASSERT_TRUE(result.feasible) << p;
        EXPECT_LE(result.latency_s, prev * (1.0 + 1e-12));
        prev = result.latency_s;
    }
}

}  // namespace
}  // namespace chrysalis::sim

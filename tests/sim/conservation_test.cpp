/// \file
/// Energy-conservation and bookkeeping properties of the full
/// energy-subsystem + simulator stack: nothing in the ledger may exceed
/// what was harvested (plus initial storage), and the simulator's
/// load-side accounting must be consistent with the controller's
/// delivered energy.

#include <sstream>
#include <tuple>

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"
#include "sim/intermittent_simulator.hpp"

namespace chrysalis::sim {
namespace {

using ConservationParam =
    std::tuple<double /*panel cm2*/, double /*cap F*/, double /*r_exc*/>;

class ConservationTest
    : public ::testing::TestWithParam<ConservationParam>
{
};

TEST_P(ConservationTest, LedgerNeverCreatesEnergy)
{
    const auto& [panel_cm2, cap_f, r_exc] = GetParam();
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;
    std::vector<dataflow::LayerMapping> mappings(model.layer_count());
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        mappings[i].tiles_k = 4;
        mappings[i].clamp_to(model.layer(i));
    }
    const auto cost =
        dataflow::analyze_model(model, mappings, mcu.cost_params());

    energy::Capacitor::Config cap_config;
    cap_config.capacitance_f = cap_f;
    cap_config.initial_voltage_v = 3.5;
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            panel_cm2,
            std::make_shared<energy::ConstantSolarEnvironment>(2e-3,
                                                               "cons")),
        energy::Capacitor(cap_config),
        energy::PowerManagementIc{energy::PowerManagementIc::Config{}});
    const double initial_energy =
        controller.capacitor().stored_energy();

    SimConfig config;
    config.step_s = 0.02;
    config.exception_rate = r_exc;
    config.seed = 99;
    const SimResult result =
        simulate_inference(cost, controller, config);
    if (!result.completed)
        GTEST_SKIP() << result.failure.message();

    const auto& ledger = result.ledger;
    // Everything that left the system is bounded by what entered it.
    const double inflow = ledger.harvested_j + initial_energy;
    const double outflow = ledger.delivered_j + ledger.leaked_j +
                           ledger.quiescent_j + ledger.wasted_j;
    EXPECT_LE(outflow, inflow * (1.0 + 1e-6))
        << "outflow " << outflow << " exceeds inflow " << inflow;

    // Delivered energy covers the load-side accounting (body energy;
    // brown-out checkpoint saves use the reserve margin and restores are
    // part of delivered).
    EXPECT_GE(ledger.delivered_j * (1.0 + 1e-6) + initial_energy,
              result.e_infer_j + result.e_nvm_j + result.e_static_j);

    // Non-negativity of every ledger entry.
    EXPECT_GE(ledger.harvested_j, 0.0);
    EXPECT_GE(ledger.stored_j, 0.0);
    EXPECT_GE(ledger.wasted_j, 0.0);
    EXPECT_GE(ledger.leaked_j, 0.0);
    EXPECT_GE(ledger.delivered_j, 0.0);
    EXPECT_GE(ledger.quiescent_j, 0.0);
}

TEST_P(ConservationTest, ActiveTimeBoundedByLatency)
{
    const auto& [panel_cm2, cap_f, r_exc] = GetParam();
    const auto model = dnn::make_har_cnn();
    const hw::Msp430Lea mcu;
    std::vector<dataflow::LayerMapping> mappings(model.layer_count());
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        mappings[i].tiles_k = 4;
        mappings[i].clamp_to(model.layer(i));
    }
    const auto cost =
        dataflow::analyze_model(model, mappings, mcu.cost_params());

    energy::Capacitor::Config cap_config;
    cap_config.capacitance_f = cap_f;
    cap_config.initial_voltage_v = 3.5;
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            panel_cm2,
            std::make_shared<energy::ConstantSolarEnvironment>(2e-3,
                                                               "cons")),
        energy::Capacitor(cap_config),
        energy::PowerManagementIc{energy::PowerManagementIc::Config{}});

    SimConfig config;
    config.step_s = 0.02;
    config.exception_rate = r_exc;
    const SimResult result =
        simulate_inference(cost, controller, config);
    if (!result.completed)
        GTEST_SKIP() << result.failure.message();
    EXPECT_LE(result.active_time_s, result.latency_s * (1.0 + 1e-9));
    EXPECT_GE(result.tiles_executed, result.tiles_total);
    EXPECT_GE(result.energy_cycles, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConservationTest,
    ::testing::Values(ConservationParam{20.0, 470e-6, 0.0},
                      ConservationParam{20.0, 47e-6, 0.0},
                      ConservationParam{3.0, 470e-6, 0.0},
                      ConservationParam{3.0, 100e-6, 0.3},
                      ConservationParam{8.0, 1e-3, 0.1},
                      ConservationParam{1.5, 220e-6, 0.05}),
    [](const ::testing::TestParamInfo<ConservationParam>& param_info) {
        std::ostringstream name;
        name << "p" << static_cast<int>(std::get<0>(param_info.param) * 10)
             << "_c" << static_cast<int>(std::get<1>(param_info.param) * 1e6)
             << "_r" << static_cast<int>(std::get<2>(param_info.param) * 100);
        return name.str();
    });

}  // namespace
}  // namespace chrysalis::sim

/// \file
/// Tests for the step-based intermittent simulator: completion, energy
/// cycles, exceptions, unavailability and the energy ledger.

#include "sim/intermittent_simulator.hpp"

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"
#include "search/mapping_search.hpp"

namespace chrysalis::sim {
namespace {

dataflow::ModelCost
kws_cost(std::int64_t tiles_k = 1)
{
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;
    std::vector<dataflow::LayerMapping> mappings(model.layer_count());
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        mappings[i].tiles_k = tiles_k;
        mappings[i].clamp_to(model.layer(i));
    }
    return dataflow::analyze_model(model, mappings, mcu.cost_params());
}

energy::EnergyController
make_controller(double area_cm2, double k_eh, double cap_f,
                double v0 = 3.5)
{
    energy::Capacitor::Config cap;
    cap.capacitance_f = cap_f;
    cap.initial_voltage_v = v0;
    return energy::EnergyController(
        std::make_unique<energy::SolarPanel>(
            area_cm2,
            std::make_shared<energy::ConstantSolarEnvironment>(k_eh,
                                                               "test")),
        energy::Capacitor(cap),
        energy::PowerManagementIc{energy::PowerManagementIc::Config{}});
}

SimConfig
fast_config()
{
    SimConfig config;
    config.step_s = 0.01;
    config.exception_rate = 0.0;
    return config;
}

TEST(SimulatorTest, CompletesWithAmplePower)
{
    const auto cost = kws_cost();
    auto controller = make_controller(20.0, 2e-3, 470e-6);
    const SimResult result =
        simulate_inference(cost, controller, fast_config());
    ASSERT_TRUE(result.completed) << result.failure.message();
    EXPECT_EQ(result.tiles_executed, result.tiles_total);
    EXPECT_GT(result.latency_s, 0.0);
    EXPECT_GT(result.e_infer_j, 0.0);
}

TEST(SimulatorTest, WeakerHarvestMeansLongerLatency)
{
    // The capacitor (100 uF) cannot hold the whole inference's energy, so
    // the weak-harvest run must duty-cycle while the strong one runs
    // through.
    const auto cost = kws_cost(/*tiles_k=*/4);
    auto strong = make_controller(20.0, 2e-3, 100e-6);
    auto weak = make_controller(2.0, 2e-3, 100e-6);
    const SimResult fast =
        simulate_inference(cost, strong, fast_config());
    const SimResult slow = simulate_inference(cost, weak, fast_config());
    ASSERT_TRUE(fast.completed);
    ASSERT_TRUE(slow.completed);
    EXPECT_GT(slow.latency_s, fast.latency_s);
}

TEST(SimulatorTest, ChargeCyclesAppearWhenStarved)
{
    // Load power (~9 mW) far exceeds harvest (1 cm^2 * 0.5 mW): the
    // system must duty-cycle through charge/run cycles.
    const auto cost = kws_cost(/*tiles_k=*/4);
    auto controller = make_controller(1.0, 0.5e-3, 1e-3, 0.0);
    const SimResult result =
        simulate_inference(cost, controller, fast_config());
    ASSERT_TRUE(result.completed) << result.failure.message();
    EXPECT_GE(result.energy_cycles, 1);
    EXPECT_GT(result.latency_s, result.active_time_s);
}

TEST(SimulatorTest, UnavailableWhenLeakageBlocksTurnOn)
{
    // 10 mF leaks ~1.2 mW at U_on; harvest of 0.5 mW can never charge.
    const auto cost = kws_cost();
    auto controller = make_controller(1.0, 0.5e-3, 10e-3, 0.0);
    const SimResult result =
        simulate_inference(cost, controller, fast_config());
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.failure.code, fault::FailureCode::kUnavailable);
}

TEST(SimulatorTest, InfeasibleCostFailsFast)
{
    auto cost = kws_cost();
    cost.feasible = false;
    auto controller = make_controller(8.0, 2e-3, 100e-6);
    const SimResult result =
        simulate_inference(cost, controller, fast_config());
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.failure.code,
              fault::FailureCode::kMappingInfeasible);
}

TEST(SimulatorTest, ExceptionsTriggerReexecution)
{
    const auto cost = kws_cost(/*tiles_k=*/4);
    auto controller = make_controller(20.0, 2e-3, 1e-3);
    SimConfig config = fast_config();
    config.exception_rate = 0.9;
    config.seed = 7;
    const SimResult result =
        simulate_inference(cost, controller, config);
    ASSERT_TRUE(result.completed) << result.failure.message();
    EXPECT_GT(result.exceptions, 0);
    // Exceptions cost checkpoint energy.
    EXPECT_GT(result.e_ckpt_j, 0.0);
}

TEST(SimulatorTest, ExceptionsIncreaseLatency)
{
    const auto cost = kws_cost(/*tiles_k=*/4);
    SimConfig clean = fast_config();
    SimConfig flaky = fast_config();
    flaky.exception_rate = 0.9;
    flaky.seed = 11;
    auto controller_a = make_controller(5.0, 2e-3, 1e-3);
    auto controller_b = make_controller(5.0, 2e-3, 1e-3);
    const SimResult without =
        simulate_inference(cost, controller_a, clean);
    const SimResult with = simulate_inference(cost, controller_b, flaky);
    ASSERT_TRUE(without.completed);
    ASSERT_TRUE(with.completed);
    EXPECT_GT(with.latency_s, without.latency_s);
}

TEST(SimulatorTest, DeterministicForFixedSeed)
{
    const auto cost = kws_cost(/*tiles_k=*/2);
    SimConfig config = fast_config();
    config.exception_rate = 0.3;
    config.seed = 42;
    auto controller_a = make_controller(5.0, 2e-3, 470e-6);
    auto controller_b = make_controller(5.0, 2e-3, 470e-6);
    const SimResult a = simulate_inference(cost, controller_a, config);
    const SimResult b = simulate_inference(cost, controller_b, config);
    EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
    EXPECT_EQ(a.exceptions, b.exceptions);
    EXPECT_DOUBLE_EQ(a.e_ckpt_j, b.e_ckpt_j);
}

TEST(SimulatorTest, EnergyBreakdownSumsToEAll)
{
    const auto cost = kws_cost();
    auto controller = make_controller(20.0, 2e-3, 470e-6);
    const SimResult result =
        simulate_inference(cost, controller, fast_config());
    ASSERT_TRUE(result.completed);
    EXPECT_NEAR(result.e_all_j(),
                result.e_infer_j + result.e_nvm_j + result.e_static_j +
                    result.e_ckpt_j,
                1e-15);
    // Without exceptions the body energy matches the cost model exactly.
    const double expected_body = cost.e_compute_j + cost.e_vm_j +
                                 cost.e_nvm_j + cost.e_static_j;
    EXPECT_NEAR(result.e_infer_j + result.e_nvm_j + result.e_static_j,
                expected_body, expected_body * 1e-6);
}

TEST(SimulatorTest, LedgerTracksHarvest)
{
    const auto cost = kws_cost();
    auto controller = make_controller(10.0, 2e-3, 470e-6);
    const SimResult result =
        simulate_inference(cost, controller, fast_config());
    ASSERT_TRUE(result.completed);
    // Harvested energy ~ P_eh * latency.
    EXPECT_NEAR(result.ledger.harvested_j, 20e-3 * result.latency_s,
                20e-3 * result.latency_s * 0.05);
    EXPECT_GT(result.system_efficiency(), 0.0);
}

TEST(SimulatorTest, TimeoutReportsProgress)
{
    const auto cost = kws_cost();
    auto controller = make_controller(1.0, 0.05e-3, 100e-6, 0.0);
    SimConfig config = fast_config();
    config.max_sim_time_s = 5.0;  // far too short to charge
    const SimResult result =
        simulate_inference(cost, controller, config);
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.failure.code, fault::FailureCode::kTimeout);
}

TEST(SimulatorTest, RepeatedRunsContinueWallClock)
{
    const auto cost = kws_cost();
    auto controller = make_controller(10.0, 2e-3, 470e-6);
    const auto results =
        simulate_repeated(cost, controller, fast_config(), 3);
    ASSERT_EQ(results.size(), 3u);
    for (const auto& result : results)
        EXPECT_TRUE(result.completed);
    // Per-run ledgers are deltas, not cumulative.
    EXPECT_LT(results[2].ledger.harvested_j,
              3.0 * results[0].ledger.harvested_j + 1e-6);
}

TEST(SimulatorTest, OnDemandPolicySavesCheckpointEnergyUnderStablePower)
{
    // Stable, abundant power: no brown-outs, so the on-demand policy
    // writes no checkpoints at all while eager pays one per tile.
    const auto cost = kws_cost(/*tiles_k=*/8);
    SimConfig eager = fast_config();
    SimConfig on_demand = fast_config();
    on_demand.checkpoint_policy = CheckpointPolicy::kOnDemand;
    auto controller_a = make_controller(20.0, 2e-3, 470e-6);
    auto controller_b = make_controller(20.0, 2e-3, 470e-6);
    const SimResult with_eager =
        simulate_inference(cost, controller_a, eager);
    const SimResult with_on_demand =
        simulate_inference(cost, controller_b, on_demand);
    ASSERT_TRUE(with_eager.completed);
    ASSERT_TRUE(with_on_demand.completed);
    EXPECT_GT(with_eager.e_ckpt_j, 0.0);
    EXPECT_LT(with_on_demand.e_ckpt_j, with_eager.e_ckpt_j * 0.1);
}

TEST(SimulatorTest, OnDemandPolicyStillPaysForBrownOuts)
{
    // Starved power with a capacitor too small to hold a whole tile:
    // brown-outs force saves under both policies.
    const auto cost = kws_cost(/*tiles_k=*/4);
    SimConfig config = fast_config();
    config.checkpoint_policy = CheckpointPolicy::kOnDemand;
    auto controller = make_controller(1.0, 0.5e-3, 47e-6, 0.0);
    const SimResult result =
        simulate_inference(cost, controller, config);
    ASSERT_TRUE(result.completed) << result.failure.message();
    EXPECT_GT(result.e_ckpt_j, 0.0);
}

TEST(SimulatorTest, ProbeObservesEnergyCycles)
{
    // Starved power: the probe must see voltage swinging between the
    // thresholds and both charging and active phases.
    const auto cost = kws_cost(/*tiles_k=*/4);
    auto controller = make_controller(1.0, 0.5e-3, 470e-6, 0.0);
    SimConfig config = fast_config();
    double min_v = 1e9, max_v = -1e9;
    int charging_samples = 0, active_samples = 0;
    config.probe = [&](double, double v, bool active) {
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
        (active ? active_samples : charging_samples) += 1;
    };
    const SimResult result =
        simulate_inference(cost, controller, config);
    ASSERT_TRUE(result.completed) << result.failure.message();
    EXPECT_GT(charging_samples, 0);
    EXPECT_GT(active_samples, 0);
    // Voltage visits the turn-on threshold and dips below it while
    // running (periodic energy cycles).
    EXPECT_GE(max_v, 3.5 - 1e-6);
    EXPECT_LT(min_v, 3.5);
}

TEST(SimulatorDeathTest, BadConfigIsFatal)
{
    const auto cost = kws_cost();
    auto controller = make_controller(10.0, 2e-3, 470e-6);
    SimConfig config;
    config.step_s = 0.0;
    EXPECT_EXIT(simulate_inference(cost, controller, config),
                ::testing::ExitedWithCode(1), "step_s");
    EXPECT_EXIT(simulate_repeated(cost, controller, SimConfig{}, 0),
                ::testing::ExitedWithCode(1), "runs");
}

}  // namespace
}  // namespace chrysalis::sim

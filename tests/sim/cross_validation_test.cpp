/// \file
/// Cross-validation: the step-based simulator and the closed-form
/// analytic evaluator must agree on steady-state latency across
/// workloads, harvest levels and capacitor sizes. This is the repository's
/// analogue of the paper's Fig. 7 claim that "the latency trends in the
/// actual test results were similar to the simulated results".

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "hw/msp430_lea.hpp"
#include "sim/analytic_evaluator.hpp"
#include "sim/intermittent_simulator.hpp"

namespace chrysalis::sim {
namespace {

using CrossParam =
    std::tuple<std::string /*model*/, double /*area cm2*/, double /*cap F*/>;

class CrossValidationTest : public ::testing::TestWithParam<CrossParam>
{
};

TEST_P(CrossValidationTest, SteadyStateLatencyAgreesWithinTolerance)
{
    const auto& [model_name, area_cm2, cap_f] = GetParam();
    const auto model = dnn::make_model(model_name);
    const hw::Msp430Lea mcu;

    // Mildly tiled mapping so tiles fit typical cycles.
    std::vector<dataflow::LayerMapping> mappings(model.layer_count());
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        mappings[i].tiles_k = 4;
        mappings[i].clamp_to(model.layer(i));
    }
    const auto cost =
        dataflow::analyze_model(model, mappings, mcu.cost_params());

    constexpr double kKeh = 2e-3;
    EnergyEnv env;
    env.p_eh_w = area_cm2 * kKeh;
    env.capacitor.capacitance_f = cap_f;
    const AnalyticResult analytic = analytic_evaluate(cost, env);
    if (!analytic.feasible)
        GTEST_SKIP() << "analytically infeasible: "
                     << analytic.failure.message();

    energy::Capacitor::Config cap_config = env.capacitor;
    cap_config.initial_voltage_v = env.pmic.v_off;
    energy::EnergyController controller(
        std::make_unique<energy::SolarPanel>(
            area_cm2,
            std::make_shared<energy::ConstantSolarEnvironment>(kKeh,
                                                               "cross")),
        energy::Capacitor(cap_config),
        energy::PowerManagementIc(env.pmic));

    SimConfig config;
    config.step_s = 0.02;
    config.exception_rate = 0.05;
    config.seed = 3;
    // Duty-cycled semantics: every run starts at U_off, matching the
    // analytic cold-start term.
    config.drain_between_runs = true;
    const auto results = simulate_repeated(cost, controller, config, 6);
    double latency_sum = 0.0;
    int completed = 0;
    for (const auto& result : results) {
        if (result.completed) {
            latency_sum += result.latency_s;
            ++completed;
        }
    }
    ASSERT_GT(completed, 0) << results.front().failure.message();
    const double mean_latency = latency_sum / completed;

    // Steady-state agreement within 35% (the analytic form ignores step
    // quantization, exception redo time and partially-used cycles).
    EXPECT_NEAR(mean_latency, analytic.latency_s,
                analytic.latency_s * 0.35)
        << model_name << " area=" << area_cm2 << " cap=" << cap_f;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossValidationTest,
    ::testing::Values(
        CrossParam{"simple_conv", 8.0, 100e-6},
        CrossParam{"simple_conv", 2.0, 470e-6},
        CrossParam{"kws", 8.0, 100e-6},
        CrossParam{"kws", 2.0, 1e-3},
        CrossParam{"kws", 30.0, 47e-6},
        CrossParam{"har", 8.0, 470e-6},
        CrossParam{"har", 15.0, 100e-6},
        CrossParam{"fc", 4.0, 100e-6},
        CrossParam{"cnn_s", 10.0, 470e-6}),
    [](const ::testing::TestParamInfo<CrossParam>& param_info) {
        return std::get<0>(param_info.param) + "_a" +
               std::to_string(static_cast<int>(std::get<1>(param_info.param))) +
               "_c" +
               std::to_string(
                   static_cast<int>(std::get<2>(param_info.param) * 1e6));
    });

}  // namespace
}  // namespace chrysalis::sim

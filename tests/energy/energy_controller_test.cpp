/// \file
/// Tests for the energy-cycle state machine (Eq. 3 behaviour): charging,
/// turn-on, brown-out, direct-path supply and the cumulative ledger.

#include "energy/energy_controller.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace chrysalis::energy {
namespace {

std::unique_ptr<EnergyHarvester>
make_panel(double area_cm2, double k_eh)
{
    return std::make_unique<SolarPanel>(
        area_cm2,
        std::make_shared<ConstantSolarEnvironment>(k_eh, "test"));
}

Capacitor::Config
cap_config(double c_f, double v0 = 0.0)
{
    Capacitor::Config config;
    config.capacitance_f = c_f;
    config.rated_voltage_v = 5.0;
    config.k_cap = 0.01;
    config.initial_voltage_v = v0;
    return config;
}

EnergyController
make_controller(double area_cm2, double k_eh, double c_f, double v0 = 0.0)
{
    return EnergyController(make_panel(area_cm2, k_eh),
                            Capacitor(cap_config(c_f, v0)),
                            PowerManagementIc{PowerManagementIc::Config{}});
}

TEST(EnergyControllerTest, StartsChargingWhenEmpty)
{
    auto controller = make_controller(8.0, 2e-3, 100e-6);
    EXPECT_FALSE(controller.can_run());
}

TEST(EnergyControllerTest, StartsActiveWhenPreCharged)
{
    auto controller = make_controller(8.0, 2e-3, 100e-6, 4.0);
    EXPECT_TRUE(controller.can_run());
}

TEST(EnergyControllerTest, ChargesToTurnOn)
{
    auto controller = make_controller(8.0, 2e-3, 100e-6);
    double t = 0.0;
    int steps = 0;
    while (!controller.can_run() && steps < 10000) {
        controller.step(t, 0.01, 0.0);
        t += 0.01;
        ++steps;
    }
    EXPECT_TRUE(controller.can_run());
    EXPECT_EQ(controller.ledger().cycle_count, 1);
    // Charge time should be roughly E(U_on)/ (P_in * eta): 613 uJ at
    // 16 mW * 0.9 => ~43 ms.
    EXPECT_GT(t, 0.01);
    EXPECT_LT(t, 1.0);
}

TEST(EnergyControllerTest, DirectPathPowersLoadLargerThanCapacitor)
{
    // 1 uF capacitor stores ~12.5 uJ, but harvest (16 mW) exceeds the
    // 5 mW load: the PMIC direct path must sustain it indefinitely.
    auto controller = make_controller(8.0, 2e-3, 1e-6, 3.5);
    double delivered = 0.0;
    for (int i = 0; i < 100; ++i) {
        const auto result = controller.step(i * 0.01, 0.01, 5e-3);
        delivered += result.delivered_j;
        EXPECT_FALSE(result.browned_out) << "step " << i;
    }
    EXPECT_NEAR(delivered, 5e-3 * 1.0, 1e-4);
}

TEST(EnergyControllerTest, BrownsOutWhenLoadExceedsHarvestAndStorage)
{
    // Harvest 1.6 mW, load 50 mW: storage bridges briefly, then brown-out.
    auto controller = make_controller(0.8, 2e-3, 100e-6, 3.5);
    bool browned = false;
    for (int i = 0; i < 200 && !browned; ++i)
        browned = controller.step(i * 0.01, 0.01, 50e-3).browned_out;
    EXPECT_TRUE(browned);
    EXPECT_FALSE(controller.can_run());
}

TEST(EnergyControllerTest, RecoversAfterBrownOut)
{
    auto controller = make_controller(8.0, 2e-3, 100e-6, 3.5);
    // Force brown-out with a huge load.
    for (int i = 0; i < 100 && controller.can_run(); ++i)
        controller.step(i * 0.01, 0.01, 1.0);
    ASSERT_FALSE(controller.can_run());
    // Charge back up.
    double t = 10.0;
    for (int i = 0; i < 10000 && !controller.can_run(); ++i) {
        controller.step(t, 0.01, 0.0);
        t += 0.01;
    }
    EXPECT_TRUE(controller.can_run());
    EXPECT_GE(controller.ledger().cycle_count, 1);
}

TEST(EnergyControllerTest, LedgerConservesEnergy)
{
    auto controller = make_controller(8.0, 2e-3, 470e-6);
    double t = 0.0;
    for (int i = 0; i < 2000; ++i) {
        controller.step(t, 0.01, i % 2 == 0 ? 3e-3 : 0.0);
        t += 0.01;
    }
    const auto& ledger = controller.ledger();
    // harvested = stored + wasted + (charger losses are inside wasted).
    EXPECT_GT(ledger.harvested_j, 0.0);
    EXPECT_GE(ledger.stored_j, 0.0);
    EXPECT_GE(ledger.wasted_j, 0.0);
    EXPECT_GE(ledger.leaked_j, 0.0);
    EXPECT_GE(ledger.delivered_j, 0.0);
    // Total accounted energy cannot exceed what was harvested.
    const double accounted = ledger.delivered_j + ledger.leaked_j +
                             ledger.quiescent_j + ledger.wasted_j;
    EXPECT_LT(accounted, ledger.harvested_j * 1.05);
}

TEST(EnergyControllerTest, LeakageScalesWithCapacitance)
{
    auto small = make_controller(8.0, 2e-3, 100e-6, 3.5);
    auto large = make_controller(8.0, 2e-3, 10e-3, 3.5);
    for (int i = 0; i < 100; ++i) {
        small.step(i * 0.01, 0.01, 0.0);
        large.step(i * 0.01, 0.01, 0.0);
    }
    EXPECT_GT(large.ledger().leaked_j, small.ledger().leaked_j);
}

TEST(EnergyControllerTest, FullCapacitorWastesHarvest)
{
    // Tiny capacitor at rated voltage with no load: everything harvested
    // beyond leakage replacement is wasted.
    auto controller = make_controller(30.0, 2e-3, 1e-6, 5.0);
    for (int i = 0; i < 100; ++i)
        controller.step(i * 0.01, 0.01, 0.0);
    EXPECT_GT(controller.ledger().wasted_j,
              0.5 * controller.ledger().harvested_j);
}

TEST(EnergyControllerTest, AvailableEnergyEq3Matches)
{
    auto controller = make_controller(8.0, 2e-3, 100e-6, 3.5);
    // Eq. 3: 1/2 C (U_on^2 - U_off^2) + T (k_eh A_eh - k_cap C U_on^2)
    const double e_store = 0.5 * 100e-6 * (3.5 * 3.5 - 2.2 * 2.2);
    const double t_exec = 2.0;
    const double expected =
        e_store + t_exec * (8.0 * 2e-3 - 0.01 * 100e-6 * 3.5 * 3.5);
    EXPECT_NEAR(controller.available_energy_eq3(0.0, t_exec), expected,
                1e-12);
}

TEST(EnergyControllerTest, AvailableLoadEnergyRespectsUOff)
{
    auto controller = make_controller(8.0, 2e-3, 100e-6, 3.5);
    const double usable_cap =
        0.5 * 100e-6 * (3.5 * 3.5 - 2.2 * 2.2);
    EXPECT_NEAR(controller.available_load_energy(), usable_cap * 0.85,
                1e-9);
}

TEST(EnergyControllerTest, ResetClearsState)
{
    auto controller = make_controller(8.0, 2e-3, 100e-6, 4.0);
    controller.step(0.0, 0.1, 1e-3);
    controller.reset();
    EXPECT_FALSE(controller.can_run());
    EXPECT_DOUBLE_EQ(controller.voltage(), 0.0);
    EXPECT_EQ(controller.ledger().cycle_count, 0);
    EXPECT_DOUBLE_EQ(controller.ledger().harvested_j, 0.0);
}

TEST(EnergyControllerTest, DrainToLowersVoltageAndChargesState)
{
    auto controller = make_controller(8.0, 2e-3, 470e-6, 4.5);
    ASSERT_TRUE(controller.can_run());
    const double leaked_before = controller.ledger().leaked_j;
    controller.drain_to(2.2);
    EXPECT_NEAR(controller.voltage(), 2.2, 1e-9);
    EXPECT_FALSE(controller.can_run());
    EXPECT_GT(controller.ledger().leaked_j, leaked_before);
}

TEST(EnergyControllerTest, DrainToIsNoOpWhenAlreadyLower)
{
    auto controller = make_controller(8.0, 2e-3, 470e-6, 1.0);
    controller.drain_to(2.2);
    EXPECT_NEAR(controller.voltage(), 1.0, 1e-9);
}

TEST(EnergyControllerDeathTest, DrainToRejectsBadVoltage)
{
    auto controller = make_controller(8.0, 2e-3, 470e-6, 1.0);
    EXPECT_EXIT(controller.drain_to(-1.0), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(controller.drain_to(99.0), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(EnergyControllerDeathTest, RejectsNullHarvester)
{
    EXPECT_EXIT(
        EnergyController(nullptr, Capacitor(cap_config(100e-6)),
                         PowerManagementIc{PowerManagementIc::Config{}}),
        ::testing::ExitedWithCode(1), "harvester");
}

TEST(EnergyControllerDeathTest, RejectsThresholdAboveRating)
{
    PowerManagementIc::Config pmic_config;
    pmic_config.v_on = 6.0;  // above the 5 V rated capacitor
    EXPECT_EXIT(
        EnergyController(make_panel(1.0, 1e-3),
                         Capacitor(cap_config(100e-6)),
                         PowerManagementIc{pmic_config}),
        ::testing::ExitedWithCode(1), "rated voltage");
}

TEST(EnergyControllerDeathTest, NegativeInputsPanic)
{
    auto controller = make_controller(1.0, 1e-3, 100e-6);
    EXPECT_DEATH(controller.step(0.0, -1.0, 0.0), "negative dt");
    EXPECT_DEATH(controller.step(0.0, 1.0, -1.0), "negative load");
}

}  // namespace
}  // namespace chrysalis::energy

/// \file
/// Tests for the PV I-V curve model and the perturb-and-observe MPPT
/// tracker.

#include "energy/pv_module.hpp"

#include <gtest/gtest.h>

namespace chrysalis::energy {
namespace {

PvModule
module()
{
    return PvModule{PvModule::Config{}};
}

TEST(PvModuleTest, ShortAndOpenCircuitLimits)
{
    const PvModule pv = module();
    const double k_ref = pv.config().k_eh_ref;
    // At V = 0 the current is (nearly) I_sc; at V_oc it is ~0.
    EXPECT_NEAR(pv.current(0.0, k_ref), pv.config().isc_ref_a,
                pv.config().isc_ref_a * 1e-6);
    const double voc = pv.open_circuit_voltage(k_ref);
    EXPECT_NEAR(pv.current(voc, k_ref), 0.0, 1e-12);
    EXPECT_NEAR(voc, pv.config().voc_ref_v, 1e-12);
}

TEST(PvModuleTest, CurrentScalesWithIrradiance)
{
    const PvModule pv = module();
    const double k_ref = pv.config().k_eh_ref;
    // The V_oc drift makes the diode term differ in the ~1e-8 range.
    EXPECT_NEAR(pv.current(0.0, 2.0 * k_ref),
                2.0 * pv.current(0.0, k_ref),
                2.0 * pv.current(0.0, k_ref) * 1e-6);
}

TEST(PvModuleTest, DarknessProducesNothing)
{
    const PvModule pv = module();
    EXPECT_DOUBLE_EQ(pv.current(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(pv.power(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(pv.max_power(0.0), 0.0);
}

TEST(PvModuleTest, PowerCurveIsUnimodalWithInteriorMaximum)
{
    const PvModule pv = module();
    const double k = pv.config().k_eh_ref;
    const double vmp = pv.max_power_voltage(k);
    EXPECT_GT(vmp, 0.0);
    EXPECT_LT(vmp, pv.open_circuit_voltage(k));
    const double pmp = pv.max_power(k);
    // The MPP beats nearby points.
    EXPECT_GT(pmp, pv.power(vmp * 0.8, k));
    EXPECT_GT(pmp, pv.power(vmp * 1.1, k));
}

TEST(PvModuleTest, MaxPowerIsConsistentWithIdealPanelScale)
{
    // The default module delivers roughly A * k_eh at the MPP (the ideal
    // SolarPanel abstraction), within a factor ~2.
    const PvModule pv = module();
    const double k = pv.config().k_eh_ref;
    const double ideal = pv.config().area_cm2 * k;
    const double mpp = pv.max_power(k);
    EXPECT_GT(mpp, ideal * 0.5);
    EXPECT_LT(mpp, ideal * 5.0);
}

TEST(PvModuleDeathTest, RejectsBadConfig)
{
    PvModule::Config config;
    config.isc_ref_a = 0.0;
    EXPECT_EXIT(PvModule{config}, ::testing::ExitedWithCode(1),
                "short-circuit");
}

TEST(PerturbObserveTest, ConvergesToMppFromBelow)
{
    const PvModule pv = module();
    const double k = pv.config().k_eh_ref;
    PerturbObserveTracker::Config config;
    config.initial_voltage_v = 0.2;
    PerturbObserveTracker tracker(config);
    double p = 0.0;
    for (int i = 0; i < 200; ++i)
        p = tracker.step(pv, k);
    EXPECT_GT(p, 0.95 * pv.max_power(k));
}

TEST(PerturbObserveTest, ConvergesToMppFromAbove)
{
    const PvModule pv = module();
    const double k = pv.config().k_eh_ref;
    PerturbObserveTracker::Config config;
    config.initial_voltage_v = pv.open_circuit_voltage(k) * 0.95;
    PerturbObserveTracker tracker(config);
    double p = 0.0;
    for (int i = 0; i < 200; ++i)
        p = tracker.step(pv, k);
    EXPECT_GT(p, 0.95 * pv.max_power(k));
}

TEST(PerturbObserveTest, ReconvergesAfterIrradianceStep)
{
    const PvModule pv = module();
    const double k_ref = pv.config().k_eh_ref;
    PerturbObserveTracker tracker{PerturbObserveTracker::Config{}};
    for (int i = 0; i < 200; ++i)
        tracker.step(pv, k_ref);
    // Cloud passes: irradiance quarters.
    double p = 0.0;
    for (int i = 0; i < 200; ++i)
        p = tracker.step(pv, 0.25 * k_ref);
    EXPECT_GT(p, 0.90 * pv.max_power(0.25 * k_ref));
}

TEST(PerturbObserveTest, ResetRestoresInitialPoint)
{
    const PvModule pv = module();
    PerturbObserveTracker tracker{PerturbObserveTracker::Config{}};
    for (int i = 0; i < 50; ++i)
        tracker.step(pv, pv.config().k_eh_ref);
    tracker.reset();
    EXPECT_DOUBLE_EQ(
        tracker.voltage(),
        PerturbObserveTracker::Config{}.initial_voltage_v);
}

TEST(MpptSolarPanelTest, DeliversNearIdealPanelPower)
{
    auto env = std::make_shared<ConstantSolarEnvironment>(2e-3, "ref");
    MpptSolarPanel panel(module(),
                         PerturbObserveTracker{
                             PerturbObserveTracker::Config{}},
                         env, /*iterations_per_query=*/16);
    // Warm up the control loop, then check tracking efficiency.
    for (int i = 0; i < 20; ++i)
        panel.power(0.0);
    EXPECT_GT(panel.tracking_efficiency(0.0), 0.9);
}

TEST(MpptSolarPanelTest, WorksThroughHarvesterInterface)
{
    auto env = std::make_shared<ConstantSolarEnvironment>(2e-3, "ref");
    std::unique_ptr<EnergyHarvester> harvester =
        std::make_unique<MpptSolarPanel>(
            module(),
            PerturbObserveTracker{PerturbObserveTracker::Config{}}, env);
    EXPECT_DOUBLE_EQ(harvester->area_cm2(), 8.0);
    EXPECT_NE(harvester->name().find("mppt"), std::string::npos);
    double p = 0.0;
    for (int i = 0; i < 30; ++i)
        p = harvester->power(0.0);
    EXPECT_GT(p, 0.0);
    auto copy = harvester->clone();
    EXPECT_GT(copy->power(0.0), 0.0);
}

}  // namespace
}  // namespace chrysalis::energy

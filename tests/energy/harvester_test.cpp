/// \file
/// Tests for harvester models (Eq. 1: P_eh = A_eh * k_eh).

#include "energy/harvester.hpp"

#include <gtest/gtest.h>

namespace chrysalis::energy {
namespace {

std::shared_ptr<const SolarEnvironment>
constant_env(double k_eh)
{
    return std::make_shared<ConstantSolarEnvironment>(k_eh, "const");
}

TEST(SolarPanelTest, PowerIsAreaTimesCoefficient)
{
    SolarPanel panel(8.0, constant_env(2e-3));
    EXPECT_DOUBLE_EQ(panel.power(0.0), 16e-3);  // Eq. 1
    EXPECT_DOUBLE_EQ(panel.area_cm2(), 8.0);
}

class SolarPanelScalingTest : public ::testing::TestWithParam<double>
{
};

TEST_P(SolarPanelScalingTest, PowerScalesLinearlyWithArea)
{
    const double area = GetParam();
    SolarPanel unit(1.0, constant_env(1.7e-3));
    SolarPanel panel(area, constant_env(1.7e-3));
    EXPECT_NEAR(panel.power(0.0), area * unit.power(0.0), 1e-15);
}

INSTANTIATE_TEST_SUITE_P(TableIvRange, SolarPanelScalingTest,
                         ::testing::Values(1.0, 2.5, 8.0, 15.0, 30.0));

TEST(SolarPanelTest, TracksEnvironmentOverTime)
{
    auto env = std::make_shared<TraceSolarEnvironment>(
        std::vector<double>{0.0, 10.0}, std::vector<double>{0.0, 2e-3});
    SolarPanel panel(5.0, env);
    EXPECT_DOUBLE_EQ(panel.power(0.0), 0.0);
    EXPECT_DOUBLE_EQ(panel.power(5.0), 5.0 * 1e-3);
    EXPECT_DOUBLE_EQ(panel.power(10.0), 5.0 * 2e-3);
}

TEST(SolarPanelTest, SetAreaUpdatesPower)
{
    SolarPanel panel(1.0, constant_env(1e-3));
    panel.set_area_cm2(10.0);
    EXPECT_DOUBLE_EQ(panel.power(0.0), 10e-3);
}

TEST(SolarPanelTest, CloneIsDeepEnough)
{
    SolarPanel panel(3.0, constant_env(1e-3));
    auto copy = panel.clone();
    panel.set_area_cm2(20.0);
    EXPECT_DOUBLE_EQ(copy->power(0.0), 3e-3);
}

TEST(SolarPanelTest, NameMentionsEnvironment)
{
    SolarPanel panel(1.0, constant_env(1e-3));
    EXPECT_NE(panel.name().find("solar-panel"), std::string::npos);
    EXPECT_NE(panel.name().find("const"), std::string::npos);
}

TEST(SolarPanelDeathTest, RejectsNonPositiveArea)
{
    EXPECT_EXIT(SolarPanel(0.0, constant_env(1e-3)),
                ::testing::ExitedWithCode(1), "area");
    SolarPanel panel(1.0, constant_env(1e-3));
    EXPECT_EXIT(panel.set_area_cm2(-2.0), ::testing::ExitedWithCode(1),
                "area");
}

TEST(SolarPanelDeathTest, RejectsNullEnvironment)
{
    EXPECT_EXIT(SolarPanel(1.0, nullptr), ::testing::ExitedWithCode(1),
                "environment");
}

TEST(ThermalHarvesterTest, ConstantPower)
{
    ThermalHarvester teg(4.0, 0.5e-3);
    EXPECT_DOUBLE_EQ(teg.power(0.0), 2e-3);
    EXPECT_DOUBLE_EQ(teg.power(12345.0), 2e-3);
    EXPECT_DOUBLE_EQ(teg.area_cm2(), 4.0);
    EXPECT_EQ(teg.name(), "thermal-teg");
}

TEST(ThermalHarvesterTest, PolymorphicUseThroughInterface)
{
    std::unique_ptr<EnergyHarvester> harvester =
        std::make_unique<ThermalHarvester>(2.0, 1e-3);
    EXPECT_DOUBLE_EQ(harvester->power(0.0), 2e-3);
    auto copy = harvester->clone();
    EXPECT_DOUBLE_EQ(copy->power(0.0), 2e-3);
}

}  // namespace
}  // namespace chrysalis::energy

/// \file
/// Tests for the solar-environment models (constant / diurnal / trace).

#include "energy/solar_environment.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace chrysalis::energy {
namespace {

using chrysalis::units::kHour;

TEST(ConstantEnvTest, ReturnsConstant)
{
    ConstantSolarEnvironment env(1.5e-3, "test");
    EXPECT_DOUBLE_EQ(env.k_eh(0.0), 1.5e-3);
    EXPECT_DOUBLE_EQ(env.k_eh(1e6), 1.5e-3);
    EXPECT_EQ(env.name(), "test");
}

TEST(ConstantEnvTest, PresetsAreOrdered)
{
    EXPECT_GT(ConstantSolarEnvironment::brighter().k_eh(0.0),
              ConstantSolarEnvironment::darker().k_eh(0.0));
}

TEST(ConstantEnvTest, CloneIsIndependentCopy)
{
    ConstantSolarEnvironment env(2e-3, "orig");
    auto copy = env.clone();
    EXPECT_DOUBLE_EQ(copy->k_eh(0.0), 2e-3);
    EXPECT_EQ(copy->name(), "orig");
}

TEST(ConstantEnvDeathTest, RejectsNegative)
{
    EXPECT_EXIT(ConstantSolarEnvironment(-1.0, "bad"),
                ::testing::ExitedWithCode(1), "k_eh");
}

class DiurnalEnvTest : public ::testing::Test
{
  protected:
    DiurnalSolarEnvironment::Config config_;
};

TEST_F(DiurnalEnvTest, DarkAtNight)
{
    DiurnalSolarEnvironment env(config_);
    EXPECT_DOUBLE_EQ(env.k_eh(0.0), 0.0);           // midnight
    EXPECT_DOUBLE_EQ(env.k_eh(5.9 * kHour), 0.0);   // pre-dawn
    EXPECT_DOUBLE_EQ(env.k_eh(23.0 * kHour), 0.0);  // late evening
}

TEST_F(DiurnalEnvTest, PeaksAtNoon)
{
    DiurnalSolarEnvironment env(config_);
    EXPECT_NEAR(env.k_eh(12.0 * kHour), config_.peak_k_eh, 1e-9);
    EXPECT_LT(env.k_eh(8.0 * kHour), env.k_eh(12.0 * kHour));
    EXPECT_LT(env.k_eh(16.0 * kHour), env.k_eh(12.0 * kHour));
}

TEST_F(DiurnalEnvTest, SymmetricAboutNoon)
{
    DiurnalSolarEnvironment env(config_);
    EXPECT_NEAR(env.k_eh(10.0 * kHour), env.k_eh(14.0 * kHour), 1e-12);
}

TEST_F(DiurnalEnvTest, RepeatsDaily)
{
    DiurnalSolarEnvironment env(config_);
    constexpr double kDay = 24.0 * kHour;
    EXPECT_NEAR(env.k_eh(10.0 * kHour), env.k_eh(10.0 * kHour + kDay),
                1e-12);
    EXPECT_NEAR(env.k_eh(10.0 * kHour), env.k_eh(10.0 * kHour - kDay),
                1e-12);
}

TEST_F(DiurnalEnvTest, CloudsOnlyAttenuate)
{
    DiurnalSolarEnvironment clear(config_);
    config_.cloud_depth = 0.6;
    DiurnalSolarEnvironment cloudy(config_);
    for (double h = 6.5; h < 18.0; h += 0.37) {
        const double t = h * kHour;
        EXPECT_LE(cloudy.k_eh(t), clear.k_eh(t) + 1e-15) << "hour " << h;
        EXPECT_GE(cloudy.k_eh(t),
                  clear.k_eh(t) * (1.0 - config_.cloud_depth) - 1e-15);
    }
}

TEST_F(DiurnalEnvTest, CloudSignalIsDeterministic)
{
    config_.cloud_depth = 0.5;
    DiurnalSolarEnvironment a(config_);
    DiurnalSolarEnvironment b(config_);
    for (double h = 7.0; h < 17.0; h += 1.1)
        EXPECT_DOUBLE_EQ(a.k_eh(h * kHour), b.k_eh(h * kHour));
}

TEST_F(DiurnalEnvTest, DifferentSeedsGiveDifferentClouds)
{
    config_.cloud_depth = 0.9;
    DiurnalSolarEnvironment a(config_);
    config_.seed = 999;
    DiurnalSolarEnvironment b(config_);
    int differing = 0;
    for (double h = 7.0; h < 17.0; h += 0.13) {
        if (a.k_eh(h * kHour) != b.k_eh(h * kHour))
            ++differing;
    }
    EXPECT_GT(differing, 10);
}

TEST_F(DiurnalEnvTest, RejectsInvalidConfig)
{
    config_.sunset_s = config_.sunrise_s;
    EXPECT_EXIT(DiurnalSolarEnvironment{config_},
                ::testing::ExitedWithCode(1), "sunset");
}

TEST(TraceEnvTest, InterpolatesAndClamps)
{
    TraceSolarEnvironment env({0.0, 100.0}, {1e-3, 3e-3});
    EXPECT_DOUBLE_EQ(env.k_eh(-10.0), 1e-3);
    EXPECT_DOUBLE_EQ(env.k_eh(0.0), 1e-3);
    EXPECT_DOUBLE_EQ(env.k_eh(50.0), 2e-3);
    EXPECT_DOUBLE_EQ(env.k_eh(100.0), 3e-3);
    EXPECT_DOUBLE_EQ(env.k_eh(1000.0), 3e-3);
}

TEST(TraceEnvDeathTest, RejectsUnsortedTimes)
{
    EXPECT_EXIT(TraceSolarEnvironment({1.0, 1.0}, {1e-3, 1e-3}),
                ::testing::ExitedWithCode(1), "strictly increasing");
}

TEST(TraceEnvDeathTest, RejectsNegativeValues)
{
    EXPECT_EXIT(TraceSolarEnvironment({0.0, 1.0}, {1e-3, -1e-3}),
                ::testing::ExitedWithCode(1), ">= 0");
}

TEST(TraceEnvDeathTest, RejectsEmptyTrace)
{
    EXPECT_EXIT(TraceSolarEnvironment({}, {}),
                ::testing::ExitedWithCode(1), "non-empty");
}

}  // namespace
}  // namespace chrysalis::energy

/// \file
/// Tests for the capacitor model (Eq. 2 leakage, E = 1/2 C V^2 storage).

#include "energy/capacitor.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace chrysalis::energy {
namespace {

using chrysalis::units::kMicroFarad;

Capacitor::Config
base_config()
{
    Capacitor::Config config;
    config.capacitance_f = 100 * kMicroFarad;
    config.rated_voltage_v = 5.0;
    config.k_cap = 0.01;
    return config;
}

TEST(CapacitorTest, StartsAtInitialVoltage)
{
    auto config = base_config();
    config.initial_voltage_v = 3.0;
    Capacitor cap(config);
    EXPECT_DOUBLE_EQ(cap.voltage(), 3.0);
    EXPECT_NEAR(cap.stored_energy(), 0.5 * 100e-6 * 9.0, 1e-12);
}

TEST(CapacitorTest, ChargeRaisesVoltageBySquareRootLaw)
{
    Capacitor cap(base_config());
    cap.charge(0.5 * 100e-6 * 4.0);  // energy for 2 V
    EXPECT_NEAR(cap.voltage(), 2.0, 1e-9);
}

TEST(CapacitorTest, ChargeClipsAtRatedVoltage)
{
    Capacitor cap(base_config());
    const double absorbed = cap.charge(1.0);  // way beyond capacity
    EXPECT_NEAR(cap.voltage(), 5.0, 1e-9);
    EXPECT_NEAR(absorbed, 0.5 * 100e-6 * 25.0, 1e-9);
}

TEST(CapacitorTest, DischargeReturnsWhatItCanDeliver)
{
    auto config = base_config();
    config.initial_voltage_v = 2.0;
    Capacitor cap(config);
    const double stored = cap.stored_energy();
    const double delivered = cap.discharge(stored * 2.0);
    EXPECT_NEAR(delivered, stored, 1e-12);
    EXPECT_NEAR(cap.voltage(), 0.0, 1e-9);
}

TEST(CapacitorTest, ChargeDischargeRoundTrip)
{
    Capacitor cap(base_config());
    cap.charge(100e-6);
    const double stored = cap.stored_energy();
    EXPECT_NEAR(cap.discharge(stored), stored, 1e-15);
    EXPECT_NEAR(cap.stored_energy(), 0.0, 1e-15);
}

TEST(CapacitorTest, LeakageCurrentFollowsEq2)
{
    auto config = base_config();
    config.initial_voltage_v = 4.0;
    Capacitor cap(config);
    // I_R = k_cap * C * U (Eq. 2)
    EXPECT_NEAR(cap.leakage_current(), 0.01 * 100e-6 * 4.0, 1e-15);
    EXPECT_NEAR(cap.leakage_power(), 0.01 * 100e-6 * 16.0, 1e-15);
}

class CapacitorLeakageScalingTest
    : public ::testing::TestWithParam<double>
{
};

TEST_P(CapacitorLeakageScalingTest, LeakageGrowsWithCapacitance)
{
    auto config = base_config();
    config.initial_voltage_v = 3.5;
    Capacitor small(config);
    config.capacitance_f = GetParam();
    Capacitor large(config);
    if (GetParam() > 100e-6) {
        EXPECT_GT(large.leakage_power(), small.leakage_power());
    }
}

INSTANTIATE_TEST_SUITE_P(TableIvRange, CapacitorLeakageScalingTest,
                         ::testing::Values(1e-6, 10e-6, 100e-6, 1e-3,
                                           10e-3));

TEST(CapacitorTest, ApplyLeakageDrainsEnergy)
{
    auto config = base_config();
    config.initial_voltage_v = 4.0;
    Capacitor cap(config);
    const double before = cap.stored_energy();
    const double lost = cap.apply_leakage(1.0);
    EXPECT_GT(lost, 0.0);
    EXPECT_NEAR(cap.stored_energy(), before - lost, 1e-15);
}

TEST(CapacitorTest, LeakageNeverDrivesVoltageNegative)
{
    auto config = base_config();
    config.initial_voltage_v = 0.01;
    config.k_cap = 10.0;  // extreme leakage
    Capacitor cap(config);
    cap.apply_leakage(1000.0);
    EXPECT_GE(cap.voltage(), 0.0);
}

TEST(CapacitorTest, ZeroLeakageCoefficient)
{
    auto config = base_config();
    config.k_cap = 0.0;
    config.initial_voltage_v = 3.0;
    Capacitor cap(config);
    EXPECT_DOUBLE_EQ(cap.apply_leakage(100.0), 0.0);
    EXPECT_DOUBLE_EQ(cap.voltage(), 3.0);
}

TEST(CapacitorTest, EnergyBetweenThresholds)
{
    Capacitor cap(base_config());
    // 1/2 * 100uF * (3.5^2 - 2.2^2)
    EXPECT_NEAR(cap.energy_between(2.2, 3.5),
                0.5 * 100e-6 * (3.5 * 3.5 - 2.2 * 2.2), 1e-12);
    EXPECT_DOUBLE_EQ(cap.energy_between(2.0, 2.0), 0.0);
}

TEST(CapacitorTest, SetVoltageWithinRange)
{
    Capacitor cap(base_config());
    cap.set_voltage(4.2);
    EXPECT_DOUBLE_EQ(cap.voltage(), 4.2);
}

TEST(CapacitorDeathTest, RejectsBadConfigs)
{
    auto config = base_config();
    config.capacitance_f = 0.0;
    EXPECT_EXIT(Capacitor{config}, ::testing::ExitedWithCode(1),
                "capacitance");

    config = base_config();
    config.initial_voltage_v = 6.0;
    EXPECT_EXIT(Capacitor{config}, ::testing::ExitedWithCode(1),
                "initial voltage");

    config = base_config();
    config.k_cap = -0.1;
    EXPECT_EXIT(Capacitor{config}, ::testing::ExitedWithCode(1), "leakage");
}

TEST(CapacitorDeathTest, SetVoltageOutOfRange)
{
    Capacitor cap(base_config());
    EXPECT_EXIT(cap.set_voltage(5.5), ::testing::ExitedWithCode(1),
                "outside");
}

TEST(CapacitorDeathTest, NegativeEnergyPanics)
{
    Capacitor cap(base_config());
    EXPECT_DEATH(cap.charge(-1.0), "negative");
    EXPECT_DEATH(cap.discharge(-1.0), "negative");
    EXPECT_DEATH(cap.apply_leakage(-1.0), "negative");
}

}  // namespace
}  // namespace chrysalis::energy

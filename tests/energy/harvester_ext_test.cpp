/// \file
/// Tests for the harvester extensions: RF (Friis link), composite
/// aggregation and temperature-dependent capacitor leakage.

#include <gtest/gtest.h>

#include "energy/capacitor.hpp"
#include "energy/harvester.hpp"

namespace chrysalis::energy {
namespace {

TEST(RfHarvesterTest, CloserTransmitterGivesMorePower)
{
    RfHarvester::Config config;
    config.distance_m = 1.0;
    const RfHarvester near(config);
    config.distance_m = 4.0;
    const RfHarvester far(config);
    EXPECT_GT(near.power(0.0), 0.0);
    // Friis: power falls with 1/d^2 -> 16x between 1 m and 4 m.
    EXPECT_NEAR(near.power(0.0) / far.power(0.0), 16.0, 1e-6);
}

TEST(RfHarvesterTest, SensitivityFloorCutsOff)
{
    RfHarvester::Config config;
    config.distance_m = 1000.0;  // microwatts-per-km territory
    config.sensitivity_w = 1e-3;
    const RfHarvester harvester(config);
    EXPECT_DOUBLE_EQ(harvester.power(0.0), 0.0);
}

TEST(RfHarvesterTest, PowerIsTimeInvariant)
{
    const RfHarvester harvester{RfHarvester::Config{}};
    EXPECT_DOUBLE_EQ(harvester.power(0.0), harvester.power(12345.0));
}

TEST(RfHarvesterTest, MicrowattClassAtRoomScale)
{
    // A 1 W 915 MHz transmitter at 3 m should land in the uW..mW band
    // (WISP-class devices harvest tens of uW).
    const RfHarvester harvester{RfHarvester::Config{}};
    EXPECT_GT(harvester.power(0.0), 1e-6);
    EXPECT_LT(harvester.power(0.0), 10e-3);
}

TEST(RfHarvesterDeathTest, RejectsBadConfig)
{
    RfHarvester::Config config;
    config.distance_m = 0.0;
    EXPECT_EXIT(RfHarvester{config}, ::testing::ExitedWithCode(1),
                "distance");
}

TEST(CompositeHarvesterTest, SumsPowerAndArea)
{
    std::vector<std::unique_ptr<EnergyHarvester>> children;
    children.push_back(std::make_unique<ThermalHarvester>(4.0, 0.5e-3));
    children.push_back(std::make_unique<SolarPanel>(
        8.0, std::make_shared<ConstantSolarEnvironment>(2e-3, "sun")));
    const CompositeHarvester composite(std::move(children));
    EXPECT_DOUBLE_EQ(composite.power(0.0), 4.0 * 0.5e-3 + 8.0 * 2e-3);
    EXPECT_DOUBLE_EQ(composite.area_cm2(), 12.0);
    EXPECT_EQ(composite.child_count(), 2u);
    EXPECT_NE(composite.name().find("thermal-teg"), std::string::npos);
    EXPECT_NE(composite.name().find("solar-panel"), std::string::npos);
}

TEST(CompositeHarvesterTest, CloneIsDeep)
{
    std::vector<std::unique_ptr<EnergyHarvester>> children;
    children.push_back(std::make_unique<ThermalHarvester>(1.0, 1e-3));
    const CompositeHarvester composite(std::move(children));
    auto copy = composite.clone();
    EXPECT_DOUBLE_EQ(copy->power(0.0), composite.power(0.0));
}

TEST(CompositeHarvesterDeathTest, RejectsEmptyAndNull)
{
    EXPECT_EXIT(CompositeHarvester{{}}, ::testing::ExitedWithCode(1),
                "at least one");
    std::vector<std::unique_ptr<EnergyHarvester>> children;
    children.push_back(nullptr);
    EXPECT_EXIT(CompositeHarvester{std::move(children)},
                ::testing::ExitedWithCode(1), "null child");
}

TEST(CapacitorTemperatureTest, ReferenceTemperatureIsNeutral)
{
    Capacitor::Config config;
    config.initial_voltage_v = 3.0;
    const Capacitor cap(config);
    EXPECT_DOUBLE_EQ(cap.effective_k_cap(), config.k_cap);
}

TEST(CapacitorTemperatureTest, LeakageDoublesPerStep)
{
    Capacitor::Config config;
    config.initial_voltage_v = 3.0;
    config.temperature_c = 45.0;  // two doubling steps above 25 C
    const Capacitor hot(config);
    config.temperature_c = 25.0;
    const Capacitor ref(config);
    EXPECT_NEAR(hot.leakage_current(), 4.0 * ref.leakage_current(),
                1e-15);
}

TEST(CapacitorTemperatureTest, ColdReducesLeakage)
{
    Capacitor::Config config;
    config.initial_voltage_v = 3.0;
    config.temperature_c = 5.0;
    const Capacitor cold(config);
    EXPECT_NEAR(cold.effective_k_cap(), config.k_cap / 4.0, 1e-12);
}

TEST(CapacitorTemperatureTest, SetTemperatureUpdatesLeakage)
{
    Capacitor::Config config;
    config.initial_voltage_v = 3.0;
    Capacitor cap(config);
    const double before = cap.leakage_current();
    cap.set_temperature(35.0);
    EXPECT_NEAR(cap.leakage_current(), 2.0 * before, 1e-15);
}

TEST(CapacitorTemperatureDeathTest, RejectsBelowAbsoluteZero)
{
    Capacitor cap{Capacitor::Config{}};
    EXPECT_EXIT(cap.set_temperature(-300.0),
                ::testing::ExitedWithCode(1), "absolute zero");
}

}  // namespace
}  // namespace chrysalis::energy

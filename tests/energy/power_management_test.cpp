/// \file
/// Tests for the BQ25570-style PMIC model.

#include "energy/power_management.hpp"

#include <gtest/gtest.h>

namespace chrysalis::energy {
namespace {

TEST(PmicTest, DefaultsAreSane)
{
    PowerManagementIc pmic{PowerManagementIc::Config{}};
    EXPECT_GT(pmic.v_on(), pmic.v_off());
    EXPECT_GT(pmic.v_off(), 0.0);
    EXPECT_GT(pmic.charge_efficiency(), 0.5);
    EXPECT_LE(pmic.charge_efficiency(), 1.0);
    EXPECT_GT(pmic.discharge_efficiency(), 0.5);
    EXPECT_LE(pmic.discharge_efficiency(), 1.0);
    EXPECT_GE(pmic.quiescent_power(), 0.0);
}

TEST(PmicTest, LoadConversionRoundTrip)
{
    PowerManagementIc pmic{PowerManagementIc::Config{}};
    const double load = 1e-3;
    const double cap_side = pmic.capacitor_energy_for_load(load);
    EXPECT_GT(cap_side, load);  // regulator losses
    EXPECT_NEAR(pmic.load_energy_from_capacitor(cap_side), load, 1e-15);
}

TEST(PmicTest, ConversionIsLinear)
{
    PowerManagementIc pmic{PowerManagementIc::Config{}};
    EXPECT_NEAR(pmic.load_energy_from_capacitor(2.0),
                2.0 * pmic.load_energy_from_capacitor(1.0), 1e-12);
}

TEST(PmicTest, PerfectEfficiencyIsIdentity)
{
    PowerManagementIc::Config config;
    config.discharge_efficiency = 1.0;
    PowerManagementIc pmic(config);
    EXPECT_DOUBLE_EQ(pmic.capacitor_energy_for_load(0.5), 0.5);
}

TEST(PmicDeathTest, RejectsInvertedThresholds)
{
    PowerManagementIc::Config config;
    config.v_on = 2.0;
    config.v_off = 3.0;
    EXPECT_EXIT(PowerManagementIc{config}, ::testing::ExitedWithCode(1),
                "v_off < v_on");
}

TEST(PmicDeathTest, RejectsBadEfficiencies)
{
    PowerManagementIc::Config config;
    config.charge_efficiency = 0.0;
    EXPECT_EXIT(PowerManagementIc{config}, ::testing::ExitedWithCode(1),
                "charge efficiency");

    config = PowerManagementIc::Config{};
    config.discharge_efficiency = 1.5;
    EXPECT_EXIT(PowerManagementIc{config}, ::testing::ExitedWithCode(1),
                "discharge efficiency");
}

TEST(PmicDeathTest, NegativeEnergyPanics)
{
    PowerManagementIc pmic{PowerManagementIc::Config{}};
    EXPECT_DEATH(pmic.capacitor_energy_for_load(-1.0), "negative");
    EXPECT_DEATH(pmic.load_energy_from_capacitor(-1.0), "negative");
}

}  // namespace
}  // namespace chrysalis::energy

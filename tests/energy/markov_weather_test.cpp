/// \file
/// Tests for the Markov weather environment.

#include <set>

#include <gtest/gtest.h>

#include "energy/solar_environment.hpp"

namespace chrysalis::energy {
namespace {

using Weather = MarkovWeatherEnvironment::Weather;

TEST(MarkovWeatherTest, StartsSunnyAndAttenuatesClearSky)
{
    MarkovWeatherEnvironment::Config config;
    const MarkovWeatherEnvironment env(config);
    const DiurnalSolarEnvironment base(config.diurnal);
    EXPECT_EQ(env.weather_at(0.0), Weather::kSunny);
    // Slot 0 covers the first hour (midnight): dark anyway.
    EXPECT_DOUBLE_EQ(env.k_eh(0.0), 0.0);
    // Any sample is bounded by the clear-sky base.
    for (double h = 6.5; h < 18.0; h += 0.7) {
        EXPECT_LE(env.k_eh(h * 3600.0),
                  base.k_eh(h * 3600.0) + 1e-15);
    }
}

TEST(MarkovWeatherTest, DeterministicForSeed)
{
    MarkovWeatherEnvironment::Config config;
    const MarkovWeatherEnvironment a(config);
    const MarkovWeatherEnvironment b(config);
    for (double t = 0.0; t < 3 * 24 * 3600.0; t += 4321.0)
        EXPECT_DOUBLE_EQ(a.k_eh(t), b.k_eh(t));
}

TEST(MarkovWeatherTest, DifferentSeedsGiveDifferentWeather)
{
    MarkovWeatherEnvironment::Config config;
    const MarkovWeatherEnvironment a(config);
    config.seed = 12345;
    const MarkovWeatherEnvironment b(config);
    int differing = 0;
    for (double t = 0.0; t < 7 * 24 * 3600.0; t += 3600.0) {
        if (a.weather_at(t) != b.weather_at(t))
            ++differing;
    }
    EXPECT_GT(differing, 5);
}

TEST(MarkovWeatherTest, VisitsAllStatesOverAWeek)
{
    MarkovWeatherEnvironment::Config config;
    const MarkovWeatherEnvironment env(config);
    std::set<Weather> seen;
    for (double t = 0.0; t < 7 * 24 * 3600.0; t += 1800.0)
        seen.insert(env.weather_at(t));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(MarkovWeatherTest, SunnyDominatesLongRunByDefault)
{
    MarkovWeatherEnvironment::Config config;
    const MarkovWeatherEnvironment env(config);
    int counts[3] = {};
    for (double t = 0.0; t < 30 * 24 * 3600.0; t += 3600.0)
        ++counts[static_cast<int>(env.weather_at(t))];
    // Default chain's stationary distribution is sunny-heavy.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[2]);
}

TEST(MarkovWeatherTest, WeatherIsConstantWithinASlot)
{
    MarkovWeatherEnvironment::Config config;
    const MarkovWeatherEnvironment env(config);
    for (double slot_start = 0.0; slot_start < 48 * 3600.0;
         slot_start += config.slot_s) {
        const Weather first = env.weather_at(slot_start + 1.0);
        const Weather last =
            env.weather_at(slot_start + config.slot_s - 1.0);
        EXPECT_EQ(first, last);
    }
}

TEST(MarkovWeatherTest, CloneReplaysIdentically)
{
    MarkovWeatherEnvironment::Config config;
    const MarkovWeatherEnvironment env(config);
    const auto copy = env.clone();
    for (double t = 0.0; t < 2 * 24 * 3600.0; t += 977.0)
        EXPECT_DOUBLE_EQ(copy->k_eh(t), env.k_eh(t));
}

TEST(MarkovWeatherDeathTest, ValidatesTransitionMatrix)
{
    MarkovWeatherEnvironment::Config config;
    config.transition[0][0] = 0.5;  // row no longer sums to 1
    EXPECT_EXIT(MarkovWeatherEnvironment{config},
                ::testing::ExitedWithCode(1), "sums to");

    config = MarkovWeatherEnvironment::Config{};
    config.transition[1][1] = -0.1;
    config.transition[1][0] = 0.9;
    EXPECT_EXIT(MarkovWeatherEnvironment{config},
                ::testing::ExitedWithCode(1), "negative transition");

    config = MarkovWeatherEnvironment::Config{};
    config.slot_s = 0.0;
    EXPECT_EXIT(MarkovWeatherEnvironment{config},
                ::testing::ExitedWithCode(1), "slot_s");
}

}  // namespace
}  // namespace chrysalis::energy

/// \file
/// Tests for irradiance-trace CSV parsing and writing.

#include "energy/trace_io.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace chrysalis::energy {
namespace {

TEST(TraceIoTest, ParsesSimpleCsv)
{
    std::istringstream input("0,0.001\n10,0.002\n20,0.0005\n");
    const auto env = parse_irradiance_csv(input, "unit");
    EXPECT_EQ(env.name(), "unit");
    EXPECT_DOUBLE_EQ(env.k_eh(0.0), 0.001);
    EXPECT_DOUBLE_EQ(env.k_eh(5.0), 0.0015);
    EXPECT_DOUBLE_EQ(env.k_eh(20.0), 0.0005);
}

TEST(TraceIoTest, SkipsHeaderCommentsAndBlanks)
{
    std::istringstream input(
        "time_s,k_eh\n# recorded on the roof\n\n0,0.001\n60,0.003\n");
    const auto env = parse_irradiance_csv(input);
    EXPECT_DOUBLE_EQ(env.k_eh(30.0), 0.002);
}

TEST(TraceIoTest, ToleratesWhitespace)
{
    std::istringstream input("  0 , 0.001 \n 10 , 0.002 \n");
    const auto env = parse_irradiance_csv(input);
    EXPECT_DOUBLE_EQ(env.k_eh(10.0), 0.002);
}

TEST(TraceIoTest, SkipsMalformedLinesAndKeepsTheRest)
{
    // Glitchy field recording: a short line, garbage, a NaN sample, a
    // negative sample and a logger-restart (time going backwards). Only
    // the three good samples should survive.
    std::istringstream input(
        "0,0.001\n"
        "5\n"
        "abc,def\n"
        "10,nan\n"
        "15,-0.5\n"
        "3,0.009\n"
        "20,0.003\n"
        "40,0.005\n");
    const auto env = parse_irradiance_csv(input, "glitchy");
    EXPECT_DOUBLE_EQ(env.k_eh(0.0), 0.001);
    EXPECT_DOUBLE_EQ(env.k_eh(20.0), 0.003);
    EXPECT_DOUBLE_EQ(env.k_eh(30.0), 0.004);  // interpolates 20..40
}

TEST(TraceIoDeathTest, NoValidSamplesIsFatal)
{
    std::istringstream empty("# nothing here\n");
    EXPECT_EXIT(parse_irradiance_csv(empty),
                ::testing::ExitedWithCode(1), "no valid samples");

    std::istringstream all_bad("abc,def\n0\n1,nan\n");
    EXPECT_EXIT(parse_irradiance_csv(all_bad),
                ::testing::ExitedWithCode(1), "no valid samples");
}

TEST(TraceIoDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(load_irradiance_csv("/nonexistent/trace.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoTest, WriteThenParseRoundTrips)
{
    const ConstantSolarEnvironment env(1.5e-3, "const");
    std::ostringstream out;
    write_irradiance_csv(out, env, 0.0, 100.0, 25.0);
    std::istringstream in(out.str());
    const auto parsed = parse_irradiance_csv(in);
    EXPECT_DOUBLE_EQ(parsed.k_eh(50.0), 1.5e-3);
}

TEST(TraceIoTest, ExportsDiurnalProfileShape)
{
    DiurnalSolarEnvironment::Config config;
    const DiurnalSolarEnvironment env(config);
    std::ostringstream out;
    write_irradiance_csv(out, env, 0.0, 24.0 * 3600.0, 3600.0);
    std::istringstream in(out.str());
    const auto parsed = parse_irradiance_csv(in);
    // Noon sample beats morning sample; midnight is dark.
    EXPECT_GT(parsed.k_eh(12 * 3600.0), parsed.k_eh(8 * 3600.0));
    EXPECT_DOUBLE_EQ(parsed.k_eh(0.0), 0.0);
}

TEST(TraceIoDeathTest, WriteRejectsBadRange)
{
    const ConstantSolarEnvironment env(1e-3, "c");
    std::ostringstream out;
    EXPECT_EXIT(write_irradiance_csv(out, env, 10.0, 0.0, 1.0),
                ::testing::ExitedWithCode(1), "invalid range");
}

}  // namespace
}  // namespace chrysalis::energy

// In-process tests for the chrysalis_lint rule engine: every rule gets
// a positive (fires), a negative (stays quiet), and a suppression case.
// The end-to-end CLI behaviour is covered by lint_golden_test.cpp.
#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using chrysalis::lint::Violation;
using chrysalis::lint::scan_source;

std::vector<std::string> rule_ids(const std::vector<Violation>& violations)
{
    std::vector<std::string> ids;
    ids.reserve(violations.size());
    for (const Violation& v : violations) {
        ids.push_back(v.rule);
    }
    return ids;
}

bool has_rule(const std::vector<Violation>& violations, const std::string& rule)
{
    const std::vector<std::string> ids = rule_ids(violations);
    return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

TEST(LintRules, RegistryListsEveryRuleOnce)
{
    const auto& rules = chrysalis::lint::rules();
    ASSERT_FALSE(rules.empty());
    std::vector<std::string> ids;
    for (const auto& rule : rules) {
        EXPECT_EQ(rule.id.rfind("chrysalis-", 0), 0U) << rule.id;
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
        ids.push_back(rule.id);
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
        << "duplicate rule id in registry";
}

TEST(LintRules, RandFiresOnLibcRandomness)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "#include <cstdlib>\n"
        "void f() { srand(7); }\n"
        "int g() { return rand(); }\n");
    EXPECT_EQ(violations.size(), 2U);
    EXPECT_TRUE(has_rule(violations, "chrysalis-rand"));
}

TEST(LintRules, RandIgnoresStringsCommentsAndIdentifiers)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "// rand() in a comment\n"
        "const char* s = \"rand()\";\n"
        "int operand(int brand);\n");
    EXPECT_TRUE(violations.empty()) << violations.front().message;
}

TEST(LintRules, ClockAllowedOnlyUnderObs)
{
    const std::string code =
        "#include <chrono>\n"
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(has_rule(scan_source("src/core/x.cpp", code),
                         "chrysalis-clock"));
    EXPECT_FALSE(has_rule(scan_source("src/obs/x.cpp", code),
                          "chrysalis-clock"));
}

TEST(LintRules, SystemClockBannedEvenInObs)
{
    const auto violations = scan_source(
        "src/obs/x.cpp",
        "auto t = std::chrono::system_clock::now();\n");
    EXPECT_TRUE(has_rule(violations, "chrysalis-clock"));
}

TEST(LintRules, GetenvAllowlistIsExact)
{
    const std::string code = "const char* v = std::getenv(\"X\");\n";
    EXPECT_TRUE(has_rule(scan_source("src/core/x.cpp", code),
                         "chrysalis-getenv"));
    EXPECT_FALSE(has_rule(scan_source("src/common/logging.cpp", code),
                          "chrysalis-getenv"));
    EXPECT_FALSE(has_rule(scan_source("bench/common/bench_util.cpp", code),
                          "chrysalis-getenv"));
}

TEST(LintRules, UnorderedIterationFlagsRangeForAndBegin)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> scores;\n"
        "void f() {\n"
        "  for (const auto& kv : scores) { (void)kv; }\n"
        "  auto it = scores.begin();\n"
        "  (void)it;\n"
        "}\n");
    EXPECT_EQ(violations.size(), 2U);
    EXPECT_TRUE(has_rule(violations, "chrysalis-unordered-iter"));
}

TEST(LintRules, UnorderedLookupIsClean)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> scores;\n"
        "bool f() { return scores.find(3) != scores.end(); }\n");
    EXPECT_FALSE(has_rule(violations, "chrysalis-unordered-iter"));
}

TEST(LintRules, FloatFormatScopedToReportPaths)
{
    const std::string code =
        "#include <cstdio>\n"
        "void f(double x) { std::printf(\"%.6f\", x); }\n";
    EXPECT_TRUE(has_rule(scan_source("src/core/campaign_journal.cpp", code),
                         "chrysalis-float-format"));
    // Outside the journal/report surfaces the rule does not apply.
    EXPECT_FALSE(has_rule(scan_source("src/energy/harvester.cpp", code),
                          "chrysalis-float-format"));
    // The helper's own home is exempt: it is where %.17g must live.
    EXPECT_FALSE(
        has_rule(scan_source("src/common/string_utils.cpp", code),
                 "chrysalis-float-format"));
}

TEST(LintRules, IntegerFormatsAreFineInReportPaths)
{
    const auto violations = scan_source(
        "src/core/campaign_journal.cpp",
        "#include <cstdio>\n"
        "void f(int n) { std::printf(\"%d %08x\", n, n); }\n");
    EXPECT_FALSE(has_rule(violations, "chrysalis-float-format"));
}

TEST(LintRules, UnitSuffixFlagsNonSiDoubles)
{
    const auto violations = scan_source(
        "src/energy/x.hpp",
        "#ifndef CHRYSALIS_ENERGY_X_HPP\n"
        "#define CHRYSALIS_ENERGY_X_HPP\n"
        "struct P { double latency_ms = 0.0; double latency_s = 0.0; };\n"
        "double charge(double cap_f, float budget_mj);\n"
        "#endif  // CHRYSALIS_ENERGY_X_HPP\n");
    EXPECT_EQ(violations.size(), 2U);
    EXPECT_TRUE(has_rule(violations, "chrysalis-unit-suffix"));
}

TEST(LintRules, HeaderGuardDerivedFromPath)
{
    const std::string good =
        "#ifndef CHRYSALIS_CORE_X_HPP\n"
        "#define CHRYSALIS_CORE_X_HPP\n"
        "#endif  // CHRYSALIS_CORE_X_HPP\n";
    EXPECT_TRUE(scan_source("src/core/x.hpp", good).empty());

    const std::string wrong =
        "#ifndef WRONG_GUARD_HPP\n"
        "#define WRONG_GUARD_HPP\n"
        "#endif\n";
    EXPECT_TRUE(has_rule(scan_source("src/core/x.hpp", wrong),
                         "chrysalis-header-guard"));

    EXPECT_TRUE(has_rule(scan_source("src/core/x.hpp", "#pragma once\n"),
                         "chrysalis-header-guard"));

    // Guards outside src/ keep their full path (tools/, bench/, tests/).
    const std::string tool_guard =
        "#ifndef CHRYSALIS_TOOLS_LINT_Y_HPP\n"
        "#define CHRYSALIS_TOOLS_LINT_Y_HPP\n"
        "#endif  // CHRYSALIS_TOOLS_LINT_Y_HPP\n";
    EXPECT_TRUE(scan_source("tools/lint/y.hpp", tool_guard).empty());
}

TEST(LintRules, IncludeRuleBansCCompatAndScopesTime)
{
    EXPECT_TRUE(has_rule(
        scan_source("src/core/x.cpp", "#include <stdio.h>\n"),
        "chrysalis-include"));
    EXPECT_TRUE(has_rule(scan_source("src/core/x.cpp", "#include <ctime>\n"),
                         "chrysalis-include"));
    EXPECT_FALSE(has_rule(scan_source("src/obs/x.cpp", "#include <time.h>\n"),
                          "chrysalis-include"));
    EXPECT_TRUE(has_rule(scan_source("src/core/x.cpp", "#include <random>\n"),
                         "chrysalis-include"));
    EXPECT_FALSE(
        has_rule(scan_source("src/common/rng.hpp",
                             "#ifndef CHRYSALIS_COMMON_RNG_HPP\n"
                             "#define CHRYSALIS_COMMON_RNG_HPP\n"
                             "#include <random>\n"
                             "#endif  // CHRYSALIS_COMMON_RNG_HPP\n"),
                 "chrysalis-include"));
}

TEST(LintRules, NetworkHeadersScopedToServe)
{
    EXPECT_TRUE(has_rule(
        scan_source("src/core/x.cpp", "#include <sys/socket.h>\n"),
        "chrysalis-include"));
    EXPECT_TRUE(has_rule(scan_source("src/hw/x.cpp", "#include <unistd.h>\n"),
                         "chrysalis-include"));
    EXPECT_TRUE(has_rule(scan_source("bench/x.cpp", "#include <poll.h>\n"),
                         "chrysalis-include"));
    EXPECT_FALSE(has_rule(scan_source("src/serve/server.cpp",
                                      "#include <sys/socket.h>\n"
                                      "#include <netinet/in.h>\n"
                                      "#include <poll.h>\n"
                                      "#include <unistd.h>\n"),
                          "chrysalis-include"));
}

TEST(LintRules, IostreamBannedInHeadersOnly)
{
    const std::string header =
        "#ifndef CHRYSALIS_CORE_X_HPP\n"
        "#define CHRYSALIS_CORE_X_HPP\n"
        "#include <iostream>\n"
        "#endif  // CHRYSALIS_CORE_X_HPP\n";
    EXPECT_TRUE(has_rule(scan_source("src/core/x.hpp", header),
                         "chrysalis-include"));
    EXPECT_FALSE(has_rule(scan_source("src/core/x.cpp",
                                      "#include <iostream>\n"),
                          "chrysalis-include"));
}

TEST(LintRules, WellFormedNolintSuppresses)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "const char* v = std::getenv(\"X\");"
        "  // NOLINT(chrysalis-getenv): test fixture\n");
    EXPECT_TRUE(violations.empty());
}

TEST(LintRules, NolintNextlineTargetsFollowingLine)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "// NOLINTNEXTLINE(chrysalis-getenv): test fixture\n"
        "const char* v = std::getenv(\"X\");\n");
    EXPECT_TRUE(violations.empty());
}

TEST(LintRules, NolintWrongRuleDoesNotSuppress)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "const char* v = std::getenv(\"X\");"
        "  // NOLINT(chrysalis-clock): wrong rule\n");
    EXPECT_TRUE(has_rule(violations, "chrysalis-getenv"));
}

TEST(LintRules, MalformedNolintIsItselfAViolation)
{
    EXPECT_TRUE(has_rule(scan_source("src/core/x.cpp",
                                     "int x = 0;  // NOLINT(): empty\n"),
                         "chrysalis-nolint"));
    EXPECT_TRUE(has_rule(
        scan_source("src/core/x.cpp",
                    "int x = 0;  // NOLINT(chrysalis-rand) no colon\n"),
        "chrysalis-nolint"));
    EXPECT_TRUE(has_rule(
        scan_source("src/core/x.cpp",
                    "int x = 0;  // NOLINT(chrysalis-bogus): unknown\n"),
        "chrysalis-nolint"));
}

TEST(LintRules, BareNolintWordIsInertProse)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "// Comments may mention NOLINT without being a directive.\n"
        "int x = 0;\n");
    EXPECT_TRUE(violations.empty());
}

TEST(LintRules, ViolationsSortedByLineThenRule)
{
    const auto violations = scan_source(
        "src/core/x.cpp",
        "#include <stdio.h>\n"
        "#include <stdlib.h>\n"
        "int f() { return rand(); }\n");
    ASSERT_EQ(violations.size(), 3U);
    EXPECT_EQ(violations[0].line, 1);
    EXPECT_EQ(violations[1].line, 2);
    EXPECT_EQ(violations[2].line, 3);
    EXPECT_EQ(violations[2].rule, "chrysalis-rand");
}

TEST(LintBaseline, KeyOmitsLineNumber)
{
    Violation v;
    v.file = "src/core/x.cpp";
    v.line = 42;
    v.rule = "chrysalis-rand";
    v.source = "int r = rand();";
    const std::string key = chrysalis::lint::baseline_key(v);
    EXPECT_EQ(key, "src/core/x.cpp|chrysalis-rand|int r = rand();");
    v.line = 99;  // moving the site must not invalidate the baseline
    EXPECT_EQ(chrysalis::lint::baseline_key(v), key);
}

TEST(LintBaseline, EachEntryAbsorbsOneViolation)
{
    Violation v;
    v.file = "src/core/x.cpp";
    v.rule = "chrysalis-rand";
    v.source = "int r = rand();";
    v.line = 10;
    Violation w = v;
    w.line = 20;

    const std::string key = chrysalis::lint::baseline_key(v);
    // One baseline entry, two identical sites: one must still surface.
    auto remaining = chrysalis::lint::apply_baseline({v, w}, {key});
    EXPECT_EQ(remaining.size(), 1U);
    // Two entries absorb both.
    remaining = chrysalis::lint::apply_baseline({v, w}, {key, key});
    EXPECT_TRUE(remaining.empty());
    // Stale entries are ignored.
    remaining = chrysalis::lint::apply_baseline({v}, {key, "stale|x|y"});
    EXPECT_TRUE(remaining.empty());
}

}  // namespace

// End-to-end tests for the chrysalis_lint CLI: each fixture directory
// under tools/lint/testdata/ is a miniature repo tree whose stdout must
// match its expected.txt golden byte-for-byte, plus baseline round-trip
// and the meta-test that the real tree lints clean.
//
// CHRYSALIS_LINT_BIN and CHRYSALIS_SOURCE_DIR are injected by CMake.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
    int exit_code = -1;
    std::string output;  // stdout only; stderr carries the summary
};

RunResult run_lint(const std::string& arguments)
{
    const std::string command =
        std::string(CHRYSALIS_LINT_BIN) + " " + arguments + " 2>/dev/null";
    RunResult result;
    FILE* pipe = ::popen(command.c_str(), "r");
    if (pipe == nullptr) {
        return result;
    }
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, pipe)) > 0) {
        result.output.append(buffer, n);
    }
    const int status = ::pclose(pipe);
    result.exit_code = (status >= 0 && WIFEXITED(status))
                           ? WEXITSTATUS(status)
                           : -1;
    return result;
}

std::string read_file(const fs::path& path)
{
    std::ifstream stream(path);
    std::ostringstream contents;
    contents << stream.rdbuf();
    return contents.str();
}

fs::path testdata_root()
{
    return fs::path(CHRYSALIS_SOURCE_DIR) / "tools" / "lint" / "testdata";
}

// Runs the linter over one fixture tree and compares stdout to the
// golden file. Fixtures with findings must exit 1; clean ones exit 0.
void check_fixture(const std::string& name)
{
    const fs::path root = testdata_root() / name;
    ASSERT_TRUE(fs::exists(root / "expected.txt")) << root;
    const std::string expected = read_file(root / "expected.txt");

    const RunResult result = run_lint("--root " + root.string() + " " +
                                      (root / "src").string());
    EXPECT_EQ(result.output, expected) << "fixture: " << name;
    EXPECT_EQ(result.exit_code, expected.empty() ? 0 : 1)
        << "fixture: " << name;
}

TEST(LintGolden, Rand) { check_fixture("rand"); }
TEST(LintGolden, Clock) { check_fixture("clock"); }
TEST(LintGolden, Getenv) { check_fixture("getenv"); }
TEST(LintGolden, UnorderedIter) { check_fixture("unordered"); }
TEST(LintGolden, FloatFormat) { check_fixture("floatfmt"); }
TEST(LintGolden, UnitSuffix) { check_fixture("unit"); }
TEST(LintGolden, HeaderGuard) { check_fixture("guard"); }
TEST(LintGolden, Include) { check_fixture("include"); }
TEST(LintGolden, NetworkHeaders) { check_fixture("network"); }
TEST(LintGolden, MalformedNolint) { check_fixture("nolint"); }
TEST(LintGolden, WellFormedSuppressions) { check_fixture("suppressed"); }
TEST(LintGolden, RawLock) { check_fixture("rawlock"); }

// Runs the graph analyzer over one fixture tree (each carries its own
// `layers` spec) and compares stdout to the golden file.
void check_graph_fixture(const std::string& name)
{
    const fs::path root = testdata_root() / "graph" / name;
    ASSERT_TRUE(fs::exists(root / "expected.txt")) << root;
    ASSERT_TRUE(fs::exists(root / "layers")) << root;
    const std::string expected = read_file(root / "expected.txt");

    const RunResult result =
        run_lint("--graph --layers " + (root / "layers").string() +
                 " --root " + root.string() + " " +
                 (root / "src").string());
    EXPECT_EQ(result.output, expected) << "fixture: graph/" << name;
    EXPECT_EQ(result.exit_code, expected.empty() ? 0 : 1)
        << "fixture: graph/" << name;
}

TEST(LintGraphGolden, ForbiddenEdge) { check_graph_fixture("forbidden"); }
TEST(LintGraphGolden, IncludeCycle) { check_graph_fixture("cycle"); }
TEST(LintGraphGolden, OrphanHeader) { check_graph_fixture("orphan"); }
TEST(LintGraphGolden, CleanTree) { check_graph_fixture("clean"); }

TEST(LintGraphGolden, BadLayersFileExitsTwo)
{
    const fs::path root = testdata_root() / "graph" / "clean";
    EXPECT_EQ(run_lint("--graph --layers /no/such/layers --root " +
                       root.string() + " " + (root / "src").string())
                  .exit_code,
              2);
    // --layers / --graph-out without --graph are usage errors.
    EXPECT_EQ(run_lint("--layers " + (root / "layers").string() +
                       " --root " + root.string() + " " +
                       (root / "src").string())
                  .exit_code,
              2);
}

// The graph meta-test twin of RealTreeIsClean: the real tree must
// satisfy the compiled-in layering spec with no baseline, and the DOT
// export must land on disk. Same invocation as the lint.graph ctest
// and the CI step.
TEST(LintGraphGolden, RealTreeSatisfiesBuiltinLayering)
{
    const fs::path repo(CHRYSALIS_SOURCE_DIR);
    const fs::path dot =
        fs::temp_directory_path() / "chrysalis_lint_graph_test.dot";
    const RunResult result = run_lint(
        "--graph --graph-out " + dot.string() + " --root " +
        repo.string() + " " + (repo / "src").string() + " " +
        (repo / "bench").string() + " " + (repo / "examples").string() +
        " " + (repo / "tests").string() + " " +
        (repo / "tools").string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_TRUE(result.output.empty()) << result.output;
    const std::string rendered = read_file(dot);
    EXPECT_NE(rendered.find("digraph"), std::string::npos);
    EXPECT_NE(rendered.find("\"serve\" -> \"core\""), std::string::npos)
        << rendered;
    fs::remove(dot);
}

TEST(LintGolden, ListRulesShowsEveryFixtureRule)
{
    const RunResult result = run_lint("--list-rules");
    EXPECT_EQ(result.exit_code, 0);
    for (const char* rule :
         {"chrysalis-rand", "chrysalis-clock", "chrysalis-getenv",
          "chrysalis-unordered-iter", "chrysalis-float-format",
          "chrysalis-unit-suffix", "chrysalis-header-guard",
          "chrysalis-include", "chrysalis-nolint",
          "chrysalis-raw-lock", "chrysalis-layering",
          "chrysalis-include-cycle", "chrysalis-orphan-header"}) {
        EXPECT_NE(result.output.find(rule), std::string::npos) << rule;
    }
}

TEST(LintGolden, UsageErrorsExitTwo)
{
    EXPECT_EQ(run_lint("--no-such-flag").exit_code, 2);
    EXPECT_EQ(run_lint("").exit_code, 2);
}

TEST(LintGolden, BaselineRoundTripSilencesFixture)
{
    const fs::path root = testdata_root() / "rand";
    const fs::path baseline =
        fs::temp_directory_path() / "chrysalis_lint_baseline_test.txt";
    const std::string scan_args =
        "--root " + root.string() + " " + (root / "src").string();

    ASSERT_EQ(run_lint("--write-baseline " + baseline.string() + " " +
                       scan_args)
                  .exit_code,
              0);
    // With the freshly written baseline every finding is absorbed.
    const RunResult masked =
        run_lint("--baseline " + baseline.string() + " " + scan_args);
    EXPECT_EQ(masked.exit_code, 0);
    EXPECT_TRUE(masked.output.empty()) << masked.output;
    fs::remove(baseline);
}

// The meta-test: the real tree must lint clean with no baseline. This
// is the same invocation CI runs; a regression anywhere in src/, bench/
// or examples/ fails here first.
TEST(LintGolden, RealTreeIsClean)
{
    const fs::path repo(CHRYSALIS_SOURCE_DIR);
    const RunResult result =
        run_lint("--root " + repo.string() + " " + (repo / "src").string() +
                 " " + (repo / "bench").string() + " " +
                 (repo / "examples").string() + " " +
                 (repo / "tools").string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_TRUE(result.output.empty()) << result.output;
}

}  // namespace

// In-process tests for the include-graph layering analyzer behind
// `chrysalis_lint --graph`: layer-spec parsing, module mapping, and
// analyze_graph() on synthetic trees. The end-to-end CLI behavior
// (golden fixtures, the real tree) lives in lint_golden_test.cpp.
#include "lint_graph.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using chrysalis::lint::GraphFile;
using chrysalis::lint::GraphReport;
using chrysalis::lint::LayerSpec;
using chrysalis::lint::analyze_graph;
using chrysalis::lint::module_of;

LayerSpec parse_or_die(const std::string& text)
{
    LayerSpec spec;
    std::string error;
    EXPECT_TRUE(LayerSpec::parse(text, spec, error)) << error;
    return spec;
}

TEST(LayerSpecParse, RanksCommentsAndTop)
{
    const LayerSpec spec = parse_or_die(
        "# comment\n"
        "common = 0\n"
        "core = 2\n"
        "\n"
        "top = tools tests\n");
    ASSERT_EQ(spec.ranks.size(), 2u);
    EXPECT_EQ(spec.ranks.at("common"), 0);
    EXPECT_EQ(spec.ranks.at("core"), 2);
    EXPECT_EQ(spec.top.count("tools"), 1u);
    EXPECT_EQ(spec.top.count("tests"), 1u);
}

TEST(LayerSpecParse, RejectsMalformedInput)
{
    LayerSpec spec;
    std::string error;
    EXPECT_FALSE(LayerSpec::parse("", spec, error));
    EXPECT_FALSE(LayerSpec::parse("common zero\n", spec, error));
    EXPECT_FALSE(LayerSpec::parse("common = zero\n", spec, error));
    EXPECT_FALSE(LayerSpec::parse("common = 0\ncommon = 1\n", spec,
                                  error));
    // A module cannot be both ranked and top.
    EXPECT_FALSE(LayerSpec::parse("tools = 0\ntop = tools\n", spec,
                                  error));
    EXPECT_FALSE(error.empty());
}

TEST(LayerSpecParse, BuiltinDescribesTheRealTree)
{
    const LayerSpec& spec = LayerSpec::builtin();
    ASSERT_NE(spec.ranks.count("common"), 0u);
    EXPECT_EQ(spec.ranks.at("common"), 0);  // the foundation
    EXPECT_NE(spec.ranks.count("serve"), 0u);
    EXPECT_NE(spec.ranks.count("dist"), 0u);
    EXPECT_LT(spec.ranks.at("serve"), spec.ranks.at("dist"));
    EXPECT_NE(spec.top.count("tools"), 0u);
    EXPECT_NE(spec.top.count("tests"), 0u);
}

TEST(ModuleOf, MapsSrcAndTopTrees)
{
    EXPECT_EQ(module_of("src/common/logging.hpp"), "common");
    EXPECT_EQ(module_of("src/serve/server.cpp"), "serve");
    EXPECT_EQ(module_of("tools/lint/lint_core.cpp"), "tools");
    EXPECT_EQ(module_of("bench/common/bench_util.cpp"), "bench");
    EXPECT_EQ(module_of("tests/runtime/thread_pool_test.cpp"), "tests");
}

TEST(AnalyzeGraph, CleanTreeHasNoViolations)
{
    const LayerSpec spec =
        parse_or_die("common = 0\ncore = 1\ntop = tools\n");
    const std::vector<GraphFile> files = {
        {"src/common/base.hpp", "#ifndef B\n#define B\n#endif\n"},
        {"src/core/engine.hpp", "#include \"common/base.hpp\"\n"},
        {"src/core/main.cpp", "#include \"core/engine.hpp\"\n"},
    };
    const GraphReport report = analyze_graph(files, spec);
    EXPECT_TRUE(report.violations.empty());
}

TEST(AnalyzeGraph, FlagsUpwardEdge)
{
    const LayerSpec spec =
        parse_or_die("common = 0\ncore = 1\ntop = tools\n");
    const std::vector<GraphFile> files = {
        {"src/common/util.hpp", "#include \"core/engine.hpp\"\n"},
        {"src/core/engine.hpp", "int engine();\n"},
        {"src/core/main.cpp",
         "#include \"common/util.hpp\"\n#include \"core/engine.hpp\"\n"},
    };
    const GraphReport report = analyze_graph(files, spec);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "chrysalis-layering");
    EXPECT_EQ(report.violations[0].file, "src/common/util.hpp");
    EXPECT_EQ(report.violations[0].line, 1);
}

TEST(AnalyzeGraph, FlagsSameLayerCrossModuleEdge)
{
    // Two distinct modules on the same rank may not include each other:
    // edges must point strictly down.
    const LayerSpec spec =
        parse_or_die("fault = 1\nruntime = 1\ntop = tools\n");
    const std::vector<GraphFile> files = {
        {"src/fault/injector.hpp",
         "#include \"runtime/stable_hash.hpp\"\n"},
        {"src/runtime/stable_hash.hpp", "int hash();\n"},
        {"src/fault/main.cpp", "#include \"fault/injector.hpp\"\n"},
    };
    const GraphReport report = analyze_graph(files, spec);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "chrysalis-layering");
}

TEST(AnalyzeGraph, TopMayIncludeAnythingButIsNeverIncluded)
{
    const LayerSpec spec =
        parse_or_die("common = 0\ncore = 1\ntop = tools\n");
    const std::vector<GraphFile> files = {
        {"src/core/engine.hpp", "#include \"tools/shared.hpp\"\n"},
        {"tools/shared.hpp", "int shared();\n"},
        {"tools/main.cpp",
         "#include \"src/core/engine.hpp\"\n"
         "#include \"tools/shared.hpp\"\n"},
        {"src/core/main.cpp", "#include \"core/engine.hpp\"\n"},
    };
    const GraphReport report = analyze_graph(files, spec);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "chrysalis-layering");
    EXPECT_EQ(report.violations[0].file, "src/core/engine.hpp");
}

TEST(AnalyzeGraph, ReportsCycleOnce)
{
    const LayerSpec spec = parse_or_die("core = 0\ntop = tools\n");
    const std::vector<GraphFile> files = {
        {"src/core/alpha.hpp", "#include \"core/beta.hpp\"\n"},
        {"src/core/beta.hpp", "#include \"core/alpha.hpp\"\n"},
        {"src/core/main.cpp", "#include \"core/alpha.hpp\"\n"},
    };
    const GraphReport report = analyze_graph(files, spec);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "chrysalis-include-cycle");
    EXPECT_NE(report.violations[0].message.find(
                  "src/core/alpha.hpp -> src/core/beta.hpp -> "
                  "src/core/alpha.hpp"),
              std::string::npos)
        << report.violations[0].message;
}

TEST(AnalyzeGraph, FlagsOrphanHeader)
{
    const LayerSpec spec = parse_or_die("core = 0\ntop = tools\n");
    const std::vector<GraphFile> files = {
        {"src/core/used.hpp", "int used();\n"},
        {"src/core/dead.hpp", "int dead();\n"},
        {"src/core/main.cpp", "#include \"core/used.hpp\"\n"},
    };
    const GraphReport report = analyze_graph(files, spec);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "chrysalis-orphan-header");
    EXPECT_EQ(report.violations[0].file, "src/core/dead.hpp");
}

TEST(AnalyzeGraph, UnknownModuleIsAViolation)
{
    const LayerSpec spec = parse_or_die("common = 0\ntop = tools\n");
    const std::vector<GraphFile> files = {
        {"src/rogue/new_code.cpp", "#include \"common/base.hpp\"\n"},
        {"src/common/base.hpp", "int base();\n"},
        {"src/common/main.cpp", "#include \"common/base.hpp\"\n"},
    };
    const GraphReport report = analyze_graph(files, spec);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "chrysalis-layering");
    EXPECT_NE(report.violations[0].message.find("layering spec"),
              std::string::npos);
}

TEST(AnalyzeGraph, DotNamesModulesAndEdges)
{
    const LayerSpec spec =
        parse_or_die("common = 0\ncore = 1\ntop = tools\n");
    const std::vector<GraphFile> files = {
        {"src/common/base.hpp", "int base();\n"},
        {"src/core/engine.hpp", "#include \"common/base.hpp\"\n"},
        {"src/core/main.cpp", "#include \"core/engine.hpp\"\n"},
    };
    const GraphReport report = analyze_graph(files, spec);
    EXPECT_NE(report.dot.find("digraph"), std::string::npos);
    EXPECT_NE(report.dot.find("\"core\" -> \"common\""),
              std::string::npos)
        << report.dot;
    // Deterministic output: same input, same bytes.
    EXPECT_EQ(report.dot, analyze_graph(files, spec).dot);
}

TEST(AnalyzeGraph, RealTreeSpecAcceptsRealEdges)
{
    // A miniature copy of real-tree edges must be clean under the
    // compiled-in spec (the full-tree check runs as the lint.graph
    // ctest and in lint_golden_test.cpp).
    const std::vector<GraphFile> files = {
        {"src/common/logging.hpp", ""},
        {"src/obs/metrics.hpp", "#include \"common/logging.hpp\"\n"},
        {"src/runtime/thread_pool.hpp",
         "#include \"common/mutex.hpp\"\n"},
        {"src/common/mutex.hpp", ""},
        {"src/serve/server.cpp",
         "#include \"runtime/thread_pool.hpp\"\n"
         "#include \"obs/metrics.hpp\"\n"},
        {"tests/runtime/thread_pool_test.cpp",
         "#include \"runtime/thread_pool.hpp\"\n"},
    };
    const GraphReport report =
        analyze_graph(files, LayerSpec::builtin());
    for (const auto& violation : report.violations)
        ADD_FAILURE() << violation.file << ": " << violation.message;
}

}  // namespace

// End-to-end tests of the distributed campaign subsystem: worker-list
// parsing, fleet probing, the headline byte-identity guarantee (CSV and
// canonical journal identical to a sequential local run at 1, 2 and 4
// workers), fault-tolerant reassignment around a dead worker and a
// worker killed mid-campaign, and journal-based resume.

#include "dist/coordinator.hpp"
#include "dist/worker_pool.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "core/campaign_spec.hpp"
#include "dnn/model_zoo.hpp"
#include "fault/fault_injector.hpp"
#include "serve/server.hpp"

namespace {

using namespace chrysalis;

core::CampaignSpec small_spec()
{
    core::CampaignSpec spec;
    spec.cases = 6;
    spec.population = 4;
    spec.generations = 2;
    spec.seed = 3;
    return spec;
}

std::string campaign_csv(const core::CampaignResult& result)
{
    std::ostringstream out;
    result.write_csv(out, core::CsvColumns::kDeterministic);
    return out.str();
}

std::string read_file(const std::string& path)
{
    std::ifstream input(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(input)) << path;
    std::ostringstream out;
    out << input.rdbuf();
    return out.str();
}

/// Sequential local oracle: CSV + deterministic journal bytes.
struct Reference {
    std::string csv;
    std::string journal;
};

Reference local_reference(const core::CampaignSpec& spec)
{
    const dnn::Model model = dnn::make_model(spec.model);
    const std::vector<core::CampaignCase> cases =
        core::build_campaign_cases(spec, model);
    std::unique_ptr<fault::FaultInjector> faults;
    const search::ExplorerOptions base =
        core::build_explorer_options(spec, faults);
    const std::string path = "dist_test_reference.jsonl";
    std::remove(path.c_str());
    core::CampaignOptions options;
    options.threads = 1;
    options.journal_path = path;
    options.deterministic_journal = true;
    Reference reference;
    reference.csv = campaign_csv(core::run_campaign(cases, base, options));
    reference.journal = read_file(path);
    std::remove(path.c_str());
    return reference;
}

/// Starts \p count loopback daemons and returns them plus their
/// addresses.
std::vector<std::unique_ptr<serve::Server>>
start_fleet(int count, std::vector<dist::WorkerAddress>& addresses)
{
    std::vector<std::unique_ptr<serve::Server>> servers;
    for (int i = 0; i < count; ++i) {
        serve::ServerOptions options;
        options.host = "127.0.0.1";
        options.threads = 1;
        auto server = std::make_unique<serve::Server>(options);
        server->start();
        addresses.push_back({"127.0.0.1", server->port()});
        servers.push_back(std::move(server));
    }
    return servers;
}

/// A port that refuses connections: acquired by starting a server just
/// long enough to learn its kernel-assigned port, then stopping it.
int dead_port()
{
    serve::ServerOptions options;
    options.host = "127.0.0.1";
    options.threads = 1;
    serve::Server server(options);
    server.start();
    const int port = server.port();
    server.stop();
    return port;
}

TEST(WorkerPool, ParsesWorkerLists)
{
    const auto workers =
        dist::parse_worker_list("a:1, b:20 ,\thost.example:65535");
    ASSERT_EQ(workers.size(), 3u);
    EXPECT_EQ(workers[0].host, "a");
    EXPECT_EQ(workers[0].port, 1);
    EXPECT_EQ(workers[1].host, "b");
    EXPECT_EQ(workers[1].port, 20);
    EXPECT_EQ(workers[2].host, "host.example");
    EXPECT_EQ(workers[2].port, 65535);
    EXPECT_EQ(workers[2].to_string(), "host.example:65535");
}

TEST(WorkerPool, RejectsMalformedWorkerLists)
{
    FatalThrowGuard guard;
    EXPECT_THROW(dist::parse_worker_list(""), FatalError);
    EXPECT_THROW(dist::parse_worker_list("hostonly"), FatalError);
    EXPECT_THROW(dist::parse_worker_list("host:"), FatalError);
    EXPECT_THROW(dist::parse_worker_list(":123"), FatalError);
    EXPECT_THROW(dist::parse_worker_list("host:0"), FatalError);
    EXPECT_THROW(dist::parse_worker_list("host:70000"), FatalError);
    EXPECT_THROW(dist::parse_worker_list("host:12x"), FatalError);
    EXPECT_THROW(dist::parse_worker_list(" , ,"), FatalError);
}

TEST(WorkerPool, ProbeSeparatesLiveAndDeadWorkers)
{
    std::vector<dist::WorkerAddress> addresses;
    auto servers = start_fleet(1, addresses);
    addresses.push_back({"127.0.0.1", dead_port()});

    dist::WorkerPool pool(addresses, serve::ClientOptions{});
    pool.probe();
    const auto& statuses = pool.statuses();
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_TRUE(statuses[0].reachable);
    EXPECT_TRUE(statuses[0].ready);
    EXPECT_FALSE(statuses[0].worker_id.empty());
    EXPECT_FALSE(statuses[1].reachable);
    EXPECT_FALSE(statuses[1].ready);
    EXPECT_EQ(pool.ready_count(), 1u);
    servers[0]->stop();
}

TEST(DistCampaign, ByteIdenticalAtOneTwoAndFourWorkers)
{
    const core::CampaignSpec spec = small_spec();
    const Reference reference = local_reference(spec);
    const std::string journal = "dist_test_scaling.jsonl";

    for (const int worker_count : {1, 2, 4}) {
        std::vector<dist::WorkerAddress> addresses;
        auto servers = start_fleet(worker_count, addresses);
        dist::DistCampaignOptions options;
        options.workers = addresses;
        options.journal_path = journal;
        std::remove(journal.c_str());

        const dist::DistCampaignResult result =
            dist::run_distributed_campaign(spec, options);
        for (auto& server : servers)
            server->stop();

        EXPECT_EQ(result.cases, 6u);
        EXPECT_EQ(result.completed, 6u);
        EXPECT_EQ(campaign_csv(result.campaign), reference.csv)
            << worker_count << " workers";
        EXPECT_EQ(read_file(journal), reference.journal)
            << worker_count << " workers";
        std::remove(journal.c_str());
    }
}

TEST(DistCampaign, ReassignsAroundADeadWorker)
{
    const core::CampaignSpec spec = small_spec();
    const Reference reference = local_reference(spec);

    std::vector<dist::WorkerAddress> addresses;
    auto servers = start_fleet(1, addresses);
    addresses.push_back({"127.0.0.1", dead_port()});
    dist::DistCampaignOptions options;
    options.workers = addresses;

    const dist::DistCampaignResult result =
        dist::run_distributed_campaign(spec, options);
    servers[0]->stop();

    EXPECT_EQ(campaign_csv(result.campaign), reference.csv);
    EXPECT_GE(result.reassigned, 1u);
    ASSERT_EQ(result.workers.size(), 2u);
    EXPECT_FALSE(result.workers[1].ready_at_start);
    EXPECT_GE(result.workers[1].failures, 1u);
    EXPECT_EQ(result.workers[1].completed, 0u);
    EXPECT_EQ(result.workers[0].completed, 6u);
}

TEST(DistCampaign, SurvivesAWorkerKilledMidCampaign)
{
    core::CampaignSpec spec = small_spec();
    spec.cases = 9;
    const Reference reference = local_reference(spec);

    std::vector<dist::WorkerAddress> addresses;
    auto servers = start_fleet(2, addresses);
    dist::DistCampaignOptions options;
    options.workers = addresses;

    // Kill one worker as soon as the campaign is underway; its
    // in-flight or future cases must migrate to the survivor.
    std::thread killer([&servers] {
        std::this_thread::sleep_for(std::chrono::duration<double>(0.05));
        servers[1]->stop();
    });
    const dist::DistCampaignResult result =
        dist::run_distributed_campaign(spec, options);
    killer.join();
    servers[0]->stop();

    EXPECT_EQ(result.completed, 9u);
    EXPECT_EQ(campaign_csv(result.campaign), reference.csv);
}

TEST(DistCampaign, FailsWhenEveryWorkerIsDead)
{
    const core::CampaignSpec spec = small_spec();
    dist::DistCampaignOptions options;
    options.workers = {{"127.0.0.1", dead_port()},
                       {"127.0.0.1", dead_port()}};
    FatalThrowGuard guard;
    EXPECT_THROW(dist::run_distributed_campaign(spec, options),
                 FatalError);
}

TEST(DistCampaign, ResumesFromAFinishedJournalWithoutDispatching)
{
    const core::CampaignSpec spec = small_spec();
    const std::string journal = "dist_test_resume.jsonl";
    std::remove(journal.c_str());

    {
        std::vector<dist::WorkerAddress> addresses;
        auto servers = start_fleet(2, addresses);
        dist::DistCampaignOptions options;
        options.workers = addresses;
        options.journal_path = journal;
        const dist::DistCampaignResult first =
            dist::run_distributed_campaign(spec, options);
        for (auto& server : servers)
            server->stop();
        EXPECT_EQ(first.completed, 6u);
    }

    // Second run: every case restores from the journal, so the fleet
    // can be entirely dead and the output is still produced.
    dist::DistCampaignOptions options;
    options.workers = {{"127.0.0.1", dead_port()}};
    options.journal_path = journal;
    const dist::DistCampaignResult second =
        dist::run_distributed_campaign(spec, options);
    EXPECT_EQ(second.restored, 6u);
    EXPECT_EQ(second.dispatched, 0u);
    EXPECT_EQ(second.completed, 0u);
    EXPECT_EQ(campaign_csv(second.campaign),
              local_reference(spec).csv);
    std::remove(journal.c_str());
}

TEST(DistCampaign, RefusesModelFilePaths)
{
    core::CampaignSpec spec = small_spec();
    spec.model = "models/custom.model";
    dist::DistCampaignOptions options;
    options.workers = {{"127.0.0.1", 1}};
    FatalThrowGuard guard;
    EXPECT_THROW(dist::run_distributed_campaign(spec, options),
                 FatalError);
}

}  // namespace

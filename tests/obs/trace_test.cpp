/// \file
/// Tests for tracing spans: inertness without a session, nesting depth,
/// multi-thread merge, Chrome trace-event JSON shape and the SpanTimer
/// dual role (always times, records only when attached).

#include "obs/trace.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace chrysalis::obs {
namespace {

TEST(ScopedSpanTest, InertWithoutSession)
{
    ASSERT_EQ(trace(), nullptr);
    {
        OBS_SPAN("unattached");
        OBS_SPAN("also unattached");
    }
    // Nothing to observe directly — the contract is simply "no crash,
    // no state"; a session attached later must not see these spans.
    TraceSession session;
    ScopedTrace scope(session);
    EXPECT_TRUE(session.merged().empty());
}

TEST(ScopedSpanTest, RecordsNestingDepth)
{
    TraceSession session;
    {
        ScopedTrace scope(session);
        OBS_SPAN("root");
        {
            OBS_SPAN("child");
            { OBS_SPAN("grandchild"); }
        }
        OBS_SPAN("sibling");  // same depth as "child"
    }
    const std::vector<TraceEvent> events = session.merged();
    ASSERT_EQ(events.size(), 4u);
    std::uint32_t root_depth = 0, child_depth = 0, grandchild_depth = 0;
    for (const TraceEvent& event : events) {
        if (event.name == "root")
            root_depth = event.depth;
        else if (event.name == "child" || event.name == "sibling")
            child_depth = event.depth;
        else if (event.name == "grandchild")
            grandchild_depth = event.depth;
        EXPECT_GE(event.duration_us, 0.0) << event.name;
        EXPECT_GE(event.start_us, 0.0) << event.name;
    }
    EXPECT_EQ(root_depth, 0u);
    EXPECT_EQ(child_depth, 1u);
    EXPECT_EQ(grandchild_depth, 2u);
}

TEST(ScopedSpanTest, SpanOpenAcrossDetachDoesNotLeakIntoNextSession)
{
    // A span that outlives its session must not record into a session
    // attached afterwards (the session-id check).
    TraceSession first;
    attach_trace(&first);
    auto* orphan = new ScopedSpan("orphan");
    attach_trace(nullptr);

    TraceSession second;
    attach_trace(&second);
    delete orphan;  // closes after its session detached
    attach_trace(nullptr);
    EXPECT_TRUE(second.merged().empty());
    EXPECT_TRUE(first.merged().empty());
}

TEST(TraceSessionTest, MergesEventsFromMultipleThreads)
{
    TraceSession session;
    constexpr int kThreads = 4;
    constexpr int kSpans = 25;
    {
        ScopedTrace scope(session);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([] {
                for (int i = 0; i < kSpans; ++i) {
                    OBS_SPAN("worker");
                }
            });
        }
        for (auto& thread : threads)
            thread.join();
    }
    const std::vector<TraceEvent> events = session.merged();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kThreads) * kSpans);
    // Distinct session-local tids, and stable (tid, start) order.
    std::vector<std::uint32_t> tids;
    for (const TraceEvent& event : events)
        tids.push_back(event.tid);
    std::vector<std::uint32_t> unique_tids = tids;
    std::sort(unique_tids.begin(), unique_tids.end());
    unique_tids.erase(
        std::unique(unique_tids.begin(), unique_tids.end()),
        unique_tids.end());
    EXPECT_EQ(unique_tids.size(), static_cast<std::size_t>(kThreads));
    EXPECT_TRUE(std::is_sorted(tids.begin(), tids.end()));
}

TEST(TraceSessionTest, ChromeTraceJsonShape)
{
    TraceSession session;
    {
        ScopedTrace scope(session);
        OBS_SPAN("outer \"quoted\"");
        OBS_SPAN("inner");
    }
    std::ostringstream os;
    session.write_chrome_trace(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    // The quote in the span name must be escaped.
    EXPECT_NE(json.find("outer \\\"quoted\\\""), std::string::npos);
}

TEST(TraceSessionTest, DestructorDetachesItself)
{
    {
        auto session = std::make_unique<TraceSession>();
        attach_trace(session.get());
        EXPECT_EQ(trace(), session.get());
    }  // destroyed while attached
    EXPECT_EQ(trace(), nullptr);
    // Spans after the session died must be inert, not a use-after-free.
    OBS_SPAN("after death");
}

TEST(TraceSessionTest, PerThreadCapCountsDrops)
{
    TraceSession session;
    session.set_max_events_per_thread(3);
    for (int i = 0; i < 10; ++i) {
        TraceEvent event;
        event.name = "e" + std::to_string(i);
        session.add_event(std::move(event));
    }
    EXPECT_EQ(session.event_count(), 3u);
    EXPECT_EQ(session.dropped(), 7u);
    // The survivors are the earliest events, in append order.
    const std::vector<TraceEvent> events = session.merged();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].name, "e0");
    EXPECT_EQ(events[2].name, "e2");
}

TEST(TraceSessionTest, ExportCursorSurvivesLaterAppends)
{
    TraceSession session;
    const auto add = [&session](const std::string& name) {
        TraceEvent event;
        event.name = name;
        session.add_event(event);
    };
    add("a");
    add("b");
    add("c");

    std::uint64_t cursor_next = 0;
    std::uint64_t remaining = 0;
    std::vector<TraceEvent> page =
        session.export_events(0, 2, cursor_next, remaining);
    ASSERT_EQ(page.size(), 2u);
    EXPECT_EQ(page[0].name, "a");
    EXPECT_EQ(page[1].name, "b");
    EXPECT_EQ(remaining, 1u);

    // Events appended between pages must not invalidate the cursor or
    // resurface already-exported events.
    add("d");
    page = session.export_events(cursor_next, 8, cursor_next, remaining);
    ASSERT_EQ(page.size(), 2u);
    EXPECT_EQ(page[0].name, "c");
    EXPECT_EQ(page[1].name, "d");
    EXPECT_EQ(remaining, 0u);

    // Drained: a further pull from the final cursor is empty.
    page = session.export_events(cursor_next, 8, cursor_next, remaining);
    EXPECT_TRUE(page.empty());
    EXPECT_EQ(remaining, 0u);
}

TEST(TraceSessionTest, EpochSkewIsStable)
{
    TraceSession session;
    const double skew_a = session.epoch_to_monotonic_skew_s();
    const double skew_b = session.epoch_to_monotonic_skew_s();
    // Both epochs are fixed clock points, so the skew is a constant of
    // the session — that exactness is what fleet alignment leans on.
    EXPECT_DOUBLE_EQ(skew_a, skew_b);
    // session time + skew lands on the monotonic_seconds() timeline.
    const double mono_before = monotonic_seconds();
    const double mapped = session.seconds_since_epoch() + skew_a;
    const double mono_after = monotonic_seconds();
    EXPECT_GE(mapped, mono_before - 1e-9);
    EXPECT_LE(mapped, mono_after + 1e-9);
}

TEST(SpanTimerTest, TimesWithoutSession)
{
    ASSERT_EQ(trace(), nullptr);
    SpanTimer timer("untracked");
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i)
        sink = sink + 1.0;
    EXPECT_GE(timer.elapsed_s(), 0.0);
}

TEST(SpanTimerTest, RecordsWhenSessionAttached)
{
    TraceSession session;
    {
        ScopedTrace scope(session);
        SpanTimer timer("timed scope");
        EXPECT_GE(timer.elapsed_s(), 0.0);
    }
    const std::vector<TraceEvent> events = session.merged();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "timed scope");
}

}  // namespace
}  // namespace chrysalis::obs

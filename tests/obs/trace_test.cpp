/// \file
/// Tests for tracing spans: inertness without a session, nesting depth,
/// multi-thread merge, Chrome trace-event JSON shape and the SpanTimer
/// dual role (always times, records only when attached).

#include "obs/trace.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace chrysalis::obs {
namespace {

TEST(ScopedSpanTest, InertWithoutSession)
{
    ASSERT_EQ(trace(), nullptr);
    {
        OBS_SPAN("unattached");
        OBS_SPAN("also unattached");
    }
    // Nothing to observe directly — the contract is simply "no crash,
    // no state"; a session attached later must not see these spans.
    TraceSession session;
    ScopedTrace scope(session);
    EXPECT_TRUE(session.merged().empty());
}

TEST(ScopedSpanTest, RecordsNestingDepth)
{
    TraceSession session;
    {
        ScopedTrace scope(session);
        OBS_SPAN("root");
        {
            OBS_SPAN("child");
            { OBS_SPAN("grandchild"); }
        }
        OBS_SPAN("sibling");  // same depth as "child"
    }
    const std::vector<TraceEvent> events = session.merged();
    ASSERT_EQ(events.size(), 4u);
    std::uint32_t root_depth = 0, child_depth = 0, grandchild_depth = 0;
    for (const TraceEvent& event : events) {
        if (event.name == "root")
            root_depth = event.depth;
        else if (event.name == "child" || event.name == "sibling")
            child_depth = event.depth;
        else if (event.name == "grandchild")
            grandchild_depth = event.depth;
        EXPECT_GE(event.duration_us, 0.0) << event.name;
        EXPECT_GE(event.start_us, 0.0) << event.name;
    }
    EXPECT_EQ(root_depth, 0u);
    EXPECT_EQ(child_depth, 1u);
    EXPECT_EQ(grandchild_depth, 2u);
}

TEST(ScopedSpanTest, SpanOpenAcrossDetachDoesNotLeakIntoNextSession)
{
    // A span that outlives its session must not record into a session
    // attached afterwards (the session-id check).
    TraceSession first;
    attach_trace(&first);
    auto* orphan = new ScopedSpan("orphan");
    attach_trace(nullptr);

    TraceSession second;
    attach_trace(&second);
    delete orphan;  // closes after its session detached
    attach_trace(nullptr);
    EXPECT_TRUE(second.merged().empty());
    EXPECT_TRUE(first.merged().empty());
}

TEST(TraceSessionTest, MergesEventsFromMultipleThreads)
{
    TraceSession session;
    constexpr int kThreads = 4;
    constexpr int kSpans = 25;
    {
        ScopedTrace scope(session);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([] {
                for (int i = 0; i < kSpans; ++i) {
                    OBS_SPAN("worker");
                }
            });
        }
        for (auto& thread : threads)
            thread.join();
    }
    const std::vector<TraceEvent> events = session.merged();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kThreads) * kSpans);
    // Distinct session-local tids, and stable (tid, start) order.
    std::vector<std::uint32_t> tids;
    for (const TraceEvent& event : events)
        tids.push_back(event.tid);
    std::vector<std::uint32_t> unique_tids = tids;
    std::sort(unique_tids.begin(), unique_tids.end());
    unique_tids.erase(
        std::unique(unique_tids.begin(), unique_tids.end()),
        unique_tids.end());
    EXPECT_EQ(unique_tids.size(), static_cast<std::size_t>(kThreads));
    EXPECT_TRUE(std::is_sorted(tids.begin(), tids.end()));
}

TEST(TraceSessionTest, ChromeTraceJsonShape)
{
    TraceSession session;
    {
        ScopedTrace scope(session);
        OBS_SPAN("outer \"quoted\"");
        OBS_SPAN("inner");
    }
    std::ostringstream os;
    session.write_chrome_trace(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    // The quote in the span name must be escaped.
    EXPECT_NE(json.find("outer \\\"quoted\\\""), std::string::npos);
}

TEST(TraceSessionTest, DestructorDetachesItself)
{
    {
        auto session = std::make_unique<TraceSession>();
        attach_trace(session.get());
        EXPECT_EQ(trace(), session.get());
    }  // destroyed while attached
    EXPECT_EQ(trace(), nullptr);
    // Spans after the session died must be inert, not a use-after-free.
    OBS_SPAN("after death");
}

TEST(SpanTimerTest, TimesWithoutSession)
{
    ASSERT_EQ(trace(), nullptr);
    SpanTimer timer("untracked");
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i)
        sink = sink + 1.0;
    EXPECT_GE(timer.elapsed_s(), 0.0);
}

TEST(SpanTimerTest, RecordsWhenSessionAttached)
{
    TraceSession session;
    {
        ScopedTrace scope(session);
        SpanTimer timer("timed scope");
        EXPECT_GE(timer.elapsed_s(), 0.0);
    }
    const std::vector<TraceEvent> events = session.merged();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "timed scope");
}

}  // namespace
}  // namespace chrysalis::obs

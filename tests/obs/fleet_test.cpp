// FleetCollector tests: clock alignment (the merged trace must never
// show time running backwards, even under adversarial offsets), the
// flat-text trace/metric codecs the pull protocol ships records
// through, the metrics rollup namespace, and byte-stability of the
// merged Chrome trace for fixed inputs.

#include "obs/fleet.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chrysalis::obs {
namespace {

TraceEvent make_event(std::string name, double start_us,
                      double duration_us)
{
    TraceEvent event;
    event.name = std::move(name);
    event.start_us = start_us;        // NOLINT(chrysalis-unit-suffix)
    event.duration_us = duration_us;  // NOLINT(chrysalis-unit-suffix)
    return event;
}

WorkerTelemetry make_worker(std::string id, double clock_offset_s,
                            std::vector<TraceEvent> events)
{
    WorkerTelemetry worker;
    worker.worker_id = std::move(id);
    worker.clock_offset_s = clock_offset_s;
    worker.events = std::move(events);
    return worker;
}

TEST(ClockOffset, ProbeUsesRttMidpoint)
{
    // Reply's remote reading assumed at the RTT midpoint:
    // offset = (send + recv)/2 - remote.
    EXPECT_DOUBLE_EQ(clock_offset_from_probe(10.0, 12.0, 5.0), 6.0);
    EXPECT_DOUBLE_EQ(clock_offset_from_probe(0.0, 0.0, 3.0), -3.0);
    // Zero-RTT probe against an identical clock: no offset.
    EXPECT_DOUBLE_EQ(clock_offset_from_probe(7.5, 7.5, 7.5), 0.0);
}

TEST(FleetCollector, AlignmentShiftsAndRebases)
{
    FleetCollector collector;
    // Worker "a" runs 1 s ahead on the merged timeline; worker "b" is
    // the reference. a's event lands 1e6 us after its raw timestamp.
    collector.add_worker(
        make_worker("a", 1.0, {make_event("a/root", 100.0, 50.0)}));
    collector.add_worker(
        make_worker("b", 0.0, {make_event("b/root", 200.0, 25.0)}));

    std::uint64_t clamped = 99;
    const std::vector<FleetCollector::AlignedEvent> events =
        collector.aligned(&clamped);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(clamped, 0u);

    // Sorted by worker index; re-based so the earliest start is 0.
    EXPECT_EQ(events[0].worker, 0u);
    EXPECT_DOUBLE_EQ(events[0].event.start_us, 1000100.0 - 200.0);
    EXPECT_EQ(events[1].worker, 1u);
    EXPECT_DOUBLE_EQ(events[1].event.start_us, 0.0);
    // Durations are single-clock measurements; shifting never changes
    // them.
    EXPECT_DOUBLE_EQ(events[0].event.duration_us, 50.0);
    EXPECT_DOUBLE_EQ(events[1].event.duration_us, 25.0);
}

TEST(FleetCollector, AdversarialOffsetsNeverYieldNegativeDurations)
{
    // Offsets are estimates with +-RTT/2 error and the inputs come off
    // the network; feed the collector garbage (wildly wrong offsets in
    // both directions, corrupted negative durations) and assert the
    // invariant the merged trace documents: no aligned span ever has a
    // negative duration.
    FleetCollector collector;
    collector.add_worker(make_worker(
        "fast", 1e9, {make_event("x", 0.0, 10.0),
                      make_event("corrupt", 5.0, -123.0)}));
    collector.add_worker(make_worker(
        "slow", -1e9, {make_event("y", 1e12, 0.0),
                       make_event("corrupt2", 0.0, -1e-9)}));
    collector.add_worker(
        make_worker("sane", 0.0, {make_event("z", 3.0, 4.0)}));

    std::uint64_t clamped = 0;
    const std::vector<FleetCollector::AlignedEvent> events =
        collector.aligned(&clamped);
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(clamped, 2u);  // exactly the two corrupted inputs

    double min_start = events[0].event.start_us;
    for (const FleetCollector::AlignedEvent& event : events) {
        ASSERT_GE(event.event.duration_us, 0.0)
            << "negative duration survived alignment: "
            << event.event.name;
        if (event.event.start_us < min_start)
            min_start = event.event.start_us;
    }
    // Re-based: the merged timeline starts at zero.
    EXPECT_DOUBLE_EQ(min_start, 0.0);
}

TEST(FleetCollector, MergedTraceBytesAreStable)
{
    FleetCollector collector;
    TraceEvent tagged = make_event("root", 100.0, 50.0);
    tagged.trace_id = 0x2a;
    tagged.case_index = 3;
    collector.add_worker(make_worker("w-a", 1.0, {tagged}));
    collector.add_worker(
        make_worker("w-b", 0.0, {make_event("b", 200.0, 25.0)}));

    std::ostringstream first;
    collector.write_chrome_trace(first);
    std::ostringstream second;
    collector.write_chrome_trace(second);
    EXPECT_EQ(first.str(), second.str());

    // Golden bytes: process_name metadata per worker (pid = worker
    // index), then the aligned events; attribution args only when set.
    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"w-a\"}},"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"w-b\"}},"
        "{\"name\":\"root\",\"cat\":\"chrysalis\",\"ph\":\"X\","
        "\"pid\":0,\"tid\":0,\"ts\":999900.000,\"dur\":50.000,"
        "\"args\":{\"depth\":0,\"trace_id\":\"000000000000002a\","
        "\"case\":3}},"
        "{\"name\":\"b\",\"cat\":\"chrysalis\",\"ph\":\"X\","
        "\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":25.000,"
        "\"args\":{\"depth\":0}}"
        "]}\n";
    EXPECT_EQ(first.str(), expected);
}

TEST(FleetCodec, TraceEventRoundTrips)
{
    TraceEvent event;
    event.name = "serve/eval;with;separators";  // trailing field: legal
    event.tid = 7;
    event.depth = 2;
    event.start_us = 1234.5625;   // NOLINT(chrysalis-unit-suffix)
    event.duration_us = 0.03125;  // NOLINT(chrysalis-unit-suffix)
    event.trace_id = 0xdeadbeefULL;
    event.case_index = 42;
    event.worker = "host:9000";

    TraceEvent out;
    ASSERT_TRUE(decode_trace_event(encode_trace_event(event), out));
    EXPECT_EQ(out.name, event.name);
    EXPECT_EQ(out.tid, event.tid);
    EXPECT_EQ(out.depth, event.depth);
    EXPECT_EQ(out.start_us, event.start_us);
    EXPECT_EQ(out.duration_us, event.duration_us);
    EXPECT_EQ(out.trace_id, event.trace_id);
    EXPECT_EQ(out.case_index, event.case_index);
    EXPECT_EQ(out.worker, event.worker);

    // A ';' in the (non-trailing) worker field would shift every field
    // after it; the encoder sanitizes it instead.
    TraceEvent hostile;
    hostile.name = "n";
    hostile.worker = "evil;host";
    ASSERT_TRUE(decode_trace_event(encode_trace_event(hostile), out));
    EXPECT_EQ(out.worker, "evil_host");
    EXPECT_EQ(out.name, "n");
}

TEST(FleetCodec, TraceEventRejectsMalformed)
{
    TraceEvent out;
    out.name = "sentinel";
    EXPECT_FALSE(decode_trace_event("", out));
    EXPECT_FALSE(decode_trace_event("1;2;3", out));  // too few fields
    EXPECT_FALSE(decode_trace_event("x;0;0;0;0;0;w;n", out));
    EXPECT_FALSE(decode_trace_event("0;0;zero;0;0;0;w;n", out));
    EXPECT_EQ(out.name, "sentinel");  // untouched on failure
}

TEST(FleetCodec, MetricSampleRoundTripsAllKinds)
{
    MetricSample counter;
    counter.name = "cases/completed";
    counter.kind = MetricKind::kCounter;
    counter.stability = Stability::kStable;
    counter.count = 12345;

    MetricSample gauge;
    gauge.name = "queue/depth;now";  // trailing field: ';' legal
    gauge.kind = MetricKind::kGauge;
    gauge.stability = Stability::kVolatile;
    gauge.value = -2.5;

    MetricSample hist;
    hist.name = "latency_s";
    hist.kind = MetricKind::kHistogram;
    hist.stability = Stability::kVolatile;
    hist.count = 6;
    hist.sum = 1.75;
    hist.min = 0.125;
    hist.max = 0.5;
    hist.bounds = {0.25, 0.5};
    hist.counts = {4, 2, 0};

    for (const MetricSample& sample : {counter, gauge, hist}) {
        MetricSample out;
        ASSERT_TRUE(decode_metric_sample(encode_metric_sample(sample),
                                         out))
            << sample.name;
        EXPECT_EQ(out.name, sample.name);
        EXPECT_EQ(out.kind, sample.kind);
        EXPECT_EQ(out.stability, sample.stability);
        EXPECT_EQ(out.count, sample.count);
        EXPECT_EQ(out.value, sample.value);
        EXPECT_EQ(out.sum, sample.sum);
        EXPECT_EQ(out.min, sample.min);
        EXPECT_EQ(out.max, sample.max);
        EXPECT_EQ(out.bounds, sample.bounds);
        EXPECT_EQ(out.counts, sample.counts);
    }

    // Empty histogram: empty bounds/counts lists must survive.
    MetricSample empty_hist = hist;
    empty_hist.count = 0;
    empty_hist.bounds.clear();
    empty_hist.counts.clear();
    MetricSample out;
    ASSERT_TRUE(
        decode_metric_sample(encode_metric_sample(empty_hist), out));
    EXPECT_TRUE(out.bounds.empty());
    EXPECT_TRUE(out.counts.empty());
}

TEST(FleetCodec, MetricSampleRejectsMalformed)
{
    MetricSample out;
    out.name = "sentinel";
    EXPECT_FALSE(decode_metric_sample("", out));
    EXPECT_FALSE(decode_metric_sample("q;s;1;x", out));  // unknown kind
    EXPECT_FALSE(decode_metric_sample("c;w;1;x", out));  // bad stability
    EXPECT_FALSE(decode_metric_sample("c;s;abc;x", out));
    EXPECT_FALSE(decode_metric_sample("h;s;1;0;0;0;1,zz;1,0;x", out));
    EXPECT_EQ(out.name, "sentinel");
}

TEST(FleetCollector, MetricsRollupNamespacesAndAggregates)
{
    MetricSample cases_a;
    cases_a.name = "cases";
    cases_a.kind = MetricKind::kCounter;
    cases_a.count = 5;
    MetricSample cases_b = cases_a;
    cases_b.count = 7;

    MetricSample hist_a;
    hist_a.name = "lat";
    hist_a.kind = MetricKind::kHistogram;
    hist_a.count = 2;
    hist_a.sum = 3.0;
    hist_a.min = 1.0;
    hist_a.max = 2.0;
    hist_a.bounds = {1.0, 4.0};
    hist_a.counts = {1, 1, 0};
    MetricSample hist_b = hist_a;
    hist_b.count = 1;
    hist_b.sum = 8.0;
    hist_b.min = 8.0;
    hist_b.max = 8.0;
    hist_b.counts = {0, 0, 1};

    WorkerTelemetry worker_a;
    worker_a.worker_id = "alpha";
    worker_a.metrics = {cases_a, hist_a};
    WorkerTelemetry worker_b;
    worker_b.worker_id = "beta";
    worker_b.metrics = {cases_b, hist_b};

    FleetCollector collector;
    collector.add_worker(worker_a);
    collector.add_worker(worker_b);
    const std::string json =
        collector.metrics_rollup_json(ReportMode::kFull);

    // Per-worker namespacing plus cross-worker totals.
    EXPECT_NE(json.find("\"fleet/alpha/cases\":5"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"fleet/beta/cases\":7"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"fleet/total/cases\":12"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"fleet/workers\":2"), std::string::npos)
        << json;
    // Matching-bounds histograms merge: counts sum bucketwise, min/max
    // widen, count totals. (Stable-section histograms render without
    // their order-dependent sum.)
    EXPECT_NE(json.find("\"fleet/total/lat\":{\"count\":3,"
                        "\"min\":1,\"max\":8,\"bounds\":[1,4],"
                        "\"counts\":[1,1,1]}"),
              std::string::npos)
        << json;
}

TEST(FleetCollector, RollupDisambiguatesDuplicateWorkerIds)
{
    MetricSample sample;
    sample.name = "n";
    sample.kind = MetricKind::kCounter;
    sample.count = 1;

    WorkerTelemetry first;
    first.worker_id = "dup";
    first.metrics = {sample};
    WorkerTelemetry second = first;

    FleetCollector collector;
    collector.add_worker(first);
    collector.add_worker(second);
    const std::string json = collector.metrics_rollup_json();
    EXPECT_NE(json.find("\"fleet/dup/n\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"fleet/dup#1/n\":1"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"fleet/total/n\":2"), std::string::npos)
        << json;
}

TEST(FleetCollector, SessionEventsFeedTheCollector)
{
    // End-to-end within one process: spans recorded through a live
    // session round-trip through the export codec into the collector,
    // offset by the session's exact epoch skew.
    TraceSession session;
    {
        ScopedTrace scoped(session);
        OBS_SPAN("outer");
        OBS_SPAN("inner");
    }
    ASSERT_EQ(trace(), nullptr);
    ASSERT_EQ(session.event_count(), 2u);

    std::uint64_t cursor_next = 0;
    std::uint64_t remaining = 0;
    const std::vector<TraceEvent> events =
        session.export_events(0, 16, cursor_next, remaining);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(remaining, 0u);

    WorkerTelemetry self;
    self.worker_id = "local";
    self.clock_offset_s = session.epoch_to_monotonic_skew_s();
    for (const TraceEvent& event : events) {
        TraceEvent decoded;
        ASSERT_TRUE(
            decode_trace_event(encode_trace_event(event), decoded));
        self.events.push_back(std::move(decoded));
    }
    FleetCollector collector;
    collector.add_worker(std::move(self));
    std::uint64_t clamped = 0;
    const std::vector<FleetCollector::AlignedEvent> aligned =
        collector.aligned(&clamped);
    ASSERT_EQ(aligned.size(), 2u);
    EXPECT_EQ(clamped, 0u);
    for (const FleetCollector::AlignedEvent& event : aligned)
        EXPECT_GE(event.event.duration_us, 0.0);
}

}  // namespace
}  // namespace chrysalis::obs

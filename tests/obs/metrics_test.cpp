/// \file
/// Tests for the metrics registry: counter/gauge/histogram semantics,
/// concurrent updates (exercised under TSan in CI), deterministic
/// key-sorted JSON reports and the kind/stability-mismatch guard.

#include "obs/metrics.hpp"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hpp"

namespace chrysalis::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates)
{
    MetricsRegistry registry;
    Counter& counter = registry.counter("test/events");
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    // Same name returns the same metric.
    EXPECT_EQ(&registry.counter("test/events"), &counter);
}

TEST(GaugeTest, SetAndSetMax)
{
    MetricsRegistry registry;
    Gauge& gauge = registry.gauge("test/level");
    EXPECT_EQ(gauge.value(), 0.0);
    gauge.set(3.5);
    EXPECT_EQ(gauge.value(), 3.5);
    gauge.set_max(2.0);  // lower: no change
    EXPECT_EQ(gauge.value(), 3.5);
    gauge.set_max(7.0);
    EXPECT_EQ(gauge.value(), 7.0);
    gauge.set(1.0);  // plain set may lower
    EXPECT_EQ(gauge.value(), 1.0);
}

TEST(HistogramTest, BucketsCountsAndAggregates)
{
    MetricsRegistry registry;
    Histogram& histogram =
        registry.histogram("test/latency", {1.0, 10.0, 100.0});
    histogram.record(0.5);    // bucket 0 (<= 1)
    histogram.record(1.0);    // bucket 0 (inclusive upper edge)
    histogram.record(5.0);    // bucket 1
    histogram.record(1000.0); // overflow
    EXPECT_EQ(histogram.count(), 4u);
    const std::vector<std::uint64_t> counts = histogram.bucket_counts();
    ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 1006.5);
    EXPECT_EQ(histogram.min(), 0.5);
    EXPECT_EQ(histogram.max(), 1000.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeroes)
{
    MetricsRegistry registry;
    Histogram& histogram = registry.histogram("test/empty", {1.0});
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.min(), 0.0);
    EXPECT_EQ(histogram.max(), 0.0);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreLossFree)
{
    // 8 threads hammering the same counter, a per-thread counter, a
    // gauge and a histogram; run under TSan in CI to prove the update
    // paths are race-free.
    MetricsRegistry registry;
    constexpr int kThreads = 8;
    constexpr int kIters = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, t] {
            Counter& shared = registry.counter("test/shared");
            Counter& own =
                registry.counter("test/own/" + std::to_string(t));
            Gauge& gauge = registry.gauge("test/high_water");
            Histogram& histogram =
                registry.histogram("test/values", decade_bounds());
            for (int i = 0; i < kIters; ++i) {
                shared.add();
                own.add();
                gauge.set_max(static_cast<double>(t * kIters + i));
                histogram.record(static_cast<double>(i % 100) + 0.5);
            }
        });
    }
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(registry.counter("test/shared").value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(
            registry.counter("test/own/" + std::to_string(t)).value(),
            static_cast<std::uint64_t>(kIters));
    }
    EXPECT_EQ(registry.gauge("test/high_water").value(),
              static_cast<double>((kThreads - 1) * kIters + kIters - 1));
    EXPECT_EQ(registry.histogram("test/values", {}).count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, JsonIsKeySortedAndDeterministic)
{
    MetricsRegistry registry;
    // Register deliberately out of name order.
    registry.counter("zeta/count").add(2);
    registry.counter("alpha/count").add(1);
    registry.gauge("mid/gauge", Stability::kVolatile).set(0.5);

    const std::string json = registry.to_json();
    EXPECT_NE(json.find("\"schema\":\"chrysalis-metrics-v1\""),
              std::string::npos);
    // Sorted: alpha before zeta.
    EXPECT_LT(json.find("alpha/count"), json.find("zeta/count"));
    // Same registry serializes identically every time.
    EXPECT_EQ(json, registry.to_json());
}

TEST(MetricsRegistryTest, DeterministicModeOmitsVolatileMetrics)
{
    MetricsRegistry registry;
    registry.counter("stable/count").add(1);
    registry.counter("racy/count", Stability::kVolatile).add(1);
    registry.gauge("racy/gauge").set(9.0);
    registry.histogram("stable/hist", {1.0}).record(0.25);
    registry.histogram("racy/hist", {1.0}, Stability::kVolatile)
        .record(0.5);

    const std::string deterministic =
        registry.to_json(ReportMode::kDeterministic);
    EXPECT_NE(deterministic.find("stable/count"), std::string::npos);
    EXPECT_NE(deterministic.find("stable/hist"), std::string::npos);
    EXPECT_EQ(deterministic.find("racy/count"), std::string::npos);
    EXPECT_EQ(deterministic.find("racy/gauge"), std::string::npos);
    EXPECT_EQ(deterministic.find("racy/hist"), std::string::npos);
    // Histogram sums are accumulation-order dependent, so they are only
    // rendered for the volatile group (full mode); the stable section is
    // byte-identical in both modes.
    EXPECT_EQ(deterministic.find("\"sum\""), std::string::npos);
    EXPECT_NE(registry.to_json(ReportMode::kFull).find("\"sum\""),
              std::string::npos);
}

TEST(MetricsRegistryTest, KindMismatchIsFatal)
{
    MetricsRegistry registry;
    registry.counter("test/name");
    FatalThrowGuard guard;
    EXPECT_THROW(registry.gauge("test/name"), FatalError);
    EXPECT_THROW(registry.histogram("test/name", {1.0}), FatalError);
}

TEST(MetricsRegistryTest, StabilityMismatchIsFatal)
{
    MetricsRegistry registry;
    registry.counter("test/name", Stability::kStable);
    FatalThrowGuard guard;
    EXPECT_THROW(registry.counter("test/name", Stability::kVolatile),
                 FatalError);
}

TEST(GlobalRegistryTest, ScopedAttachDetach)
{
    EXPECT_EQ(metrics(), nullptr);
    {
        MetricsRegistry registry;
        ScopedMetrics scope(registry);
        ASSERT_EQ(metrics(), &registry);
        metrics()->counter("test/attached").add();
        EXPECT_EQ(registry.counter("test/attached").value(), 1u);
    }
    EXPECT_EQ(metrics(), nullptr);
}

TEST(DecadeBoundsTest, SpansMicroToTera)
{
    const std::vector<double> bounds = decade_bounds();
    ASSERT_FALSE(bounds.empty());
    EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
    EXPECT_DOUBLE_EQ(bounds.back(), 1e12);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(HistogramQuantileTest, ResolvesBucketUpperEdges)
{
    const std::vector<double> bounds = {0.001, 0.01, 0.1, 1.0};
    // 10 in (.., 0.001], 85 in (0.001, 0.01], 4 in (0.01, 0.1],
    // 1 in (0.1, 1.0], 0 overflow.
    const std::vector<std::uint64_t> counts = {10, 85, 4, 1, 0};
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.05), 0.001);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 0.01);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.95), 0.01);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.99), 0.1);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.0), 0.001);
}

TEST(HistogramQuantileTest, EmptyAndOverflowEdgeCases)
{
    EXPECT_DOUBLE_EQ(histogram_quantile({1.0}, {0, 0}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(histogram_quantile({}, {}, 0.5), 0.0);
    // All mass in the overflow bucket clamps to the last finite edge —
    // the histogram cannot resolve beyond it.
    EXPECT_DOUBLE_EQ(histogram_quantile({1.0, 2.0}, {0, 0, 7}, 0.5),
                     2.0);
}

TEST(HistogramQuantileTest, MatchesServerStatsUsage)
{
    // The serve path computes p50/p95/p99 from a live histogram's
    // bucket counts; quantiles must land on recorded buckets' edges.
    Histogram histogram(latency_bounds());
    for (int i = 0; i < 99; ++i)
        histogram.record(0.0005);
    histogram.record(5.0);
    const std::vector<std::uint64_t> counts = histogram.bucket_counts();
    const double p50 =
        histogram_quantile(histogram.bounds(), counts, 0.5);
    const double p99 =
        histogram_quantile(histogram.bounds(), counts, 0.99);
    EXPECT_LE(p50, 0.001);
    EXPECT_LE(p99, 0.001);
    const double p100 =
        histogram_quantile(histogram.bounds(), counts, 1.0);
    EXPECT_GE(p100, 5.0);
}

TEST(SamplesTest, SamplesToJsonMatchesRegistryReport)
{
    MetricsRegistry registry;
    registry.counter("a/count").add(4);
    registry.gauge("b/level").set(2.5);
    registry.histogram("c/lat", {1.0, 2.0}).record(1.5);
    EXPECT_EQ(samples_to_json(registry.samples(), ReportMode::kFull),
              registry.to_json(ReportMode::kFull));
    EXPECT_EQ(
        samples_to_json(registry.samples(), ReportMode::kDeterministic),
        registry.to_json(ReportMode::kDeterministic));
}

TEST(ThreadCpuSecondsTest, MonotonicOnThisThread)
{
    const double before = thread_cpu_seconds();
    // Burn a little CPU so the clock visibly advances where supported.
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i)
        sink = sink + static_cast<double>(i) * 1e-9;
    const double after = thread_cpu_seconds();
    EXPECT_GE(after, before);
}

}  // namespace
}  // namespace chrysalis::obs

/// \file
/// Tests for the ProgressReporter heartbeat: rate limiting, the final
/// summary line, retry/crash/restore annotations and the kInform level
/// gating (silent at the default kWarn threshold).

#include "obs/progress.hpp"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hpp"

namespace chrysalis::obs {
namespace {

/// Captures kInform heartbeat lines through the logging sink; restores
/// the previous level/sink on destruction.
class ProgressTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saved_level_ = log_level();
        set_log_level(LogLevel::kInform);
        set_log_sink([this](LogLevel level, std::string_view message) {
            records_.emplace_back(level, std::string(message));
        });
    }

    void TearDown() override
    {
        set_log_sink({});
        set_log_level(saved_level_);
    }

    std::vector<std::pair<LogLevel, std::string>> records_;

  private:
    LogLevel saved_level_;
};

ProgressReporter::Options
every_event()
{
    ProgressReporter::Options options;
    options.min_interval_s = 0.0;
    return options;
}

TEST_F(ProgressTest, EmitsHeartbeatPerEventAtZeroInterval)
{
    ProgressReporter progress("unit-test", 3, every_event());
    progress.advance();
    progress.advance();
    progress.advance();  // last item: its line is finish()'s job
    progress.finish();
    EXPECT_EQ(progress.reports_emitted(), 3u);  // 2 heartbeats + summary
    ASSERT_EQ(records_.size(), 3u);
    for (const auto& record : records_) {
        EXPECT_EQ(record.first, LogLevel::kInform);
        EXPECT_NE(record.second.find("unit-test"), std::string::npos);
    }
    EXPECT_NE(records_[0].second.find("1/3"), std::string::npos)
        << records_[0].second;
    EXPECT_NE(records_.back().second.find("3/3"), std::string::npos)
        << records_.back().second;
}

TEST_F(ProgressTest, RateLimitSuppressesIntermediateLines)
{
    ProgressReporter::Options slow;
    slow.min_interval_s = 3600.0;  // nothing but the summary can pass
    ProgressReporter progress("quiet", 100, slow);
    for (int i = 0; i < 100; ++i)
        progress.advance();
    EXPECT_EQ(progress.reports_emitted(), 0u);
    progress.finish();
    EXPECT_EQ(progress.reports_emitted(), 1u);  // final line always lands
    ASSERT_EQ(records_.size(), 1u);
    EXPECT_NE(records_[0].second.find("100/100"), std::string::npos);
}

TEST_F(ProgressTest, FinishIsIdempotent)
{
    ProgressReporter progress("once", 1, every_event());
    progress.advance();
    progress.finish();
    progress.finish();
    progress.finish();
    EXPECT_EQ(progress.reports_emitted(), 1u);  // exactly one summary
}

TEST_F(ProgressTest, AnnotatesRetriesCrashesAndRestores)
{
    ProgressReporter progress("flaky", 4, every_event());
    progress.note_retry();
    progress.note_retry();
    progress.advance();
    progress.note_crash();
    progress.advance();
    progress.note_restored();
    progress.advance();
    progress.advance();
    progress.finish();
    const std::string& summary = records_.back().second;
    EXPECT_NE(summary.find("retries"), std::string::npos) << summary;
    EXPECT_NE(summary.find("crash"), std::string::npos) << summary;
    EXPECT_NE(summary.find("restored"), std::string::npos) << summary;
}

TEST_F(ProgressTest, CleanRunSummaryOmitsFailureAnnotations)
{
    ProgressReporter progress("clean", 2, every_event());
    progress.advance();
    progress.advance();
    progress.finish();
    const std::string& summary = records_.back().second;
    EXPECT_EQ(summary.find("retries"), std::string::npos) << summary;
    EXPECT_EQ(summary.find("crash"), std::string::npos) << summary;
}

TEST(ProgressLevelTest, SilentAtDefaultWarnThreshold)
{
    const LogLevel saved = log_level();
    set_log_level(LogLevel::kWarn);
    std::vector<std::string> records;
    set_log_sink([&](LogLevel, std::string_view message) {
        records.emplace_back(message);
    });
    ProgressReporter::Options options;
    options.min_interval_s = 0.0;
    ProgressReporter progress("hidden", 2, options);
    progress.advance();
    progress.advance();
    progress.finish();
    set_log_sink({});
    set_log_level(saved);
    EXPECT_TRUE(records.empty());
}

}  // namespace
}  // namespace chrysalis::obs

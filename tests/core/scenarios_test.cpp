/// \file
/// Tests for the named scenario presets.

#include "core/scenarios.hpp"

#include <gtest/gtest.h>

namespace chrysalis::core {
namespace {

TEST(ScenariosTest, AllScenariosAreWellFormed)
{
    const auto scenarios = all_scenarios();
    ASSERT_EQ(scenarios.size(), 4u);
    for (const auto& scenario : scenarios) {
        EXPECT_FALSE(scenario.name.empty());
        EXPECT_FALSE(scenario.description.empty());
        EXPECT_GT(scenario.inputs.model.layer_count(), 0u);
        EXPECT_FALSE(scenario.inputs.options.k_eh_envs.empty());
    }
}

TEST(ScenariosTest, WearableUsesLatencyObjectiveWithPanelBudget)
{
    const Scenario scenario = make_wearable_kws_scenario();
    EXPECT_EQ(scenario.inputs.objective.kind,
              search::ObjectiveKind::kLatency);
    EXPECT_DOUBLE_EQ(scenario.inputs.objective.sp_limit_cm2, 6.0);
    EXPECT_EQ(scenario.inputs.model.name(), "kws");
    // Indoor environments are dimmer than the outdoor defaults.
    for (double k_eh : scenario.inputs.options.k_eh_envs)
        EXPECT_LT(k_eh, 1e-3);
}

TEST(ScenariosTest, MonitorMinimizesPanelUnderDeadline)
{
    const Scenario scenario = make_environment_monitor_scenario();
    EXPECT_EQ(scenario.inputs.objective.kind,
              search::ObjectiveKind::kSolarPanel);
    EXPECT_DOUBLE_EQ(scenario.inputs.objective.lat_limit_s, 30.0);
    EXPECT_EQ(scenario.inputs.model.name(), "har");
}

TEST(ScenariosTest, VisionNodeTargetsFutureAut)
{
    const Scenario scenario = make_vision_node_scenario();
    EXPECT_EQ(scenario.inputs.space.family,
              search::HardwareFamily::kAccelerator);
    EXPECT_EQ(scenario.inputs.model.name(), "alexnet");
}

TEST(ScenariosTest, QuickstartIsSmall)
{
    const Scenario scenario = make_quickstart_scenario();
    EXPECT_EQ(scenario.inputs.model.layer_count(), 1u);
    EXPECT_LE(scenario.inputs.options.outer.population *
                  scenario.inputs.options.outer.generations,
              100);
}

TEST(ScenariosTest, QuickstartRunsEndToEnd)
{
    const Scenario scenario = make_quickstart_scenario();
    const Chrysalis tool(scenario.inputs);
    const AuTSolution solution = tool.generate();
    EXPECT_TRUE(solution.feasible);
}

}  // namespace
}  // namespace chrysalis::core

/// \file
/// Tests for the batch campaign runner and its CSV export.

#include "core/campaign.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/string_utils.hpp"
#include "dnn/model_zoo.hpp"

namespace chrysalis::core {
namespace {

search::ExplorerOptions
small_options()
{
    search::ExplorerOptions options;
    options.outer.population = 8;
    options.outer.generations = 4;
    options.outer.seed = 3;
    options.inner.max_candidates_per_dim = 4;
    return options;
}

std::vector<CampaignCase>
two_cases()
{
    std::vector<CampaignCase> cases;
    cases.push_back({"conv-latsp", dnn::make_simple_conv(),
                     search::DesignSpace::existing_aut(),
                     {search::ObjectiveKind::kLatSp, 0.0, 0.0}});
    cases.push_back({"kws-lat", dnn::make_kws_mlp(),
                     search::DesignSpace::existing_aut(),
                     {search::ObjectiveKind::kLatency, 10.0, 0.0}});
    return cases;
}

TEST(CampaignTest, RunsEveryCase)
{
    const CampaignResult result =
        run_campaign(two_cases(), small_options());
    ASSERT_EQ(result.entries.size(), 2u);
    EXPECT_EQ(result.entries[0].label, "conv-latsp");
    EXPECT_EQ(result.entries[0].objective_label, "lat*sp");
    EXPECT_EQ(result.entries[1].objective_label, "lat");
    for (const auto& entry : result.entries) {
        EXPECT_TRUE(entry.solution.feasible) << entry.label;
        EXPECT_GE(entry.wall_time_s, 0.0);
    }
}

TEST(CampaignTest, EntryLookup)
{
    const CampaignResult result =
        run_campaign(two_cases(), small_options());
    EXPECT_TRUE(result.entry("kws-lat").solution.feasible);
    EXPECT_DEATH_IF_SUPPORTED((void)result.entry("nope"), "");
}

TEST(CampaignTest, CasesAreDecorrelatedButReproducible)
{
    const auto a = run_campaign(two_cases(), small_options());
    const auto b = run_campaign(two_cases(), small_options());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.entries[i].solution.score,
                         b.entries[i].solution.score);
    }
}

TEST(CampaignTest, CsvHasHeaderAndOneRowPerCase)
{
    const CampaignResult result =
        run_campaign(two_cases(), small_options());
    std::ostringstream os;
    result.write_csv(os);
    const auto lines = split(trim(os.str()), '\n');
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("label,feasible,objective"),
              std::string::npos);
    EXPECT_NE(lines[1].find("conv-latsp,1,lat*sp"), std::string::npos);
    // Every row has the same number of fields as the header.
    const auto header_fields = split(lines[0], ',').size();
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_EQ(split(lines[i], ',').size(), header_fields) << i;
}

TEST(CampaignDeathTest, EmptyCampaignIsFatal)
{
    EXPECT_EXIT(run_campaign({}, small_options()),
                ::testing::ExitedWithCode(1), "no cases");
}

}  // namespace
}  // namespace chrysalis::core

/// \file
/// Tests for multi-day deployment studies (and the Markov weather model
/// they typically use).

#include "core/deployment.hpp"

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"

namespace chrysalis::core {
namespace {

AuTSolution
small_solution()
{
    ChrysalisInputs inputs{
        dnn::make_kws_mlp(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        search::ExplorerOptions{},
    };
    inputs.options.outer.population = 10;
    inputs.options.outer.generations = 5;
    inputs.options.outer.seed = 17;
    inputs.options.inner.max_candidates_per_dim = 4;
    const Chrysalis tool(std::move(inputs));
    return tool.generate();
}

DeploymentConfig
study_config()
{
    DeploymentConfig config;
    config.days = 1;
    config.request_interval_s = 2 * 3600.0;  // 12 requests per day
    config.deadline_s = 120.0;
    config.sim.step_s = 0.1;
    return config;
}

TEST(DeploymentTest, SunnyDayServesDaytimeRequests)
{
    const AuTSolution solution = small_solution();
    ASSERT_TRUE(solution.feasible);
    energy::DiurnalSolarEnvironment::Config env_config;
    const energy::DiurnalSolarEnvironment env(env_config);
    const DeploymentReport report = simulate_deployment(
        solution, env, energy::PowerManagementIc::Config{},
        study_config());

    EXPECT_EQ(report.requests.size(), 12u);
    EXPECT_EQ(report.days.size(), 1u);
    // Night requests fail, daytime ones succeed: completion strictly
    // between 0 and 1, and at least the midday requests complete.
    EXPECT_GT(report.completion_rate, 0.2);
    EXPECT_LT(report.completion_rate, 1.0);
    bool midday_completed = false;
    for (const auto& request : report.requests) {
        const double hour = request.issue_time_s / 3600.0;
        if (hour >= 10 && hour <= 14 && request.completed)
            midday_completed = true;
        if (hour < 5 && request.attempted) {
            EXPECT_FALSE(request.completed) << "hour " << hour;
        }
    }
    EXPECT_TRUE(midday_completed);
    EXPECT_GT(report.total_harvested_j, 0.0);
}

TEST(DeploymentTest, StatsAreInternallyConsistent)
{
    const AuTSolution solution = small_solution();
    ASSERT_TRUE(solution.feasible);
    const energy::DiurnalSolarEnvironment env(
        energy::DiurnalSolarEnvironment::Config{});
    const DeploymentReport report = simulate_deployment(
        solution, env, energy::PowerManagementIc::Config{},
        study_config());

    int completed = 0, met = 0, requests = 0;
    for (const auto& day : report.days) {
        requests += day.requests;
        completed += day.completed;
        met += day.deadline_met;
        EXPECT_LE(day.deadline_met, day.completed);
        EXPECT_LE(day.completed, day.requests);
    }
    EXPECT_EQ(requests, static_cast<int>(report.requests.size()));
    EXPECT_NEAR(report.completion_rate,
                static_cast<double>(completed) / requests, 1e-12);
    EXPECT_NEAR(report.deadline_rate,
                static_cast<double>(met) / requests, 1e-12);
}

TEST(DeploymentTest, OvercastWeatherDegradesService)
{
    const AuTSolution solution = small_solution();
    ASSERT_TRUE(solution.feasible);

    energy::MarkovWeatherEnvironment::Config sunny_config;
    // Force permanently sunny vs permanently overcast via the chain.
    for (int from = 0; from < 3; ++from) {
        sunny_config.transition[from][0] = 1.0;
        sunny_config.transition[from][1] = 0.0;
        sunny_config.transition[from][2] = 0.0;
    }
    auto overcast_config = sunny_config;
    for (int from = 0; from < 3; ++from) {
        overcast_config.transition[from][0] = 0.0;
        overcast_config.transition[from][2] = 1.0;
    }
    // Overcast chains still start sunny in slot 0; attenuate globally
    // instead for determinism of the first slot.
    overcast_config.sunny_factor = overcast_config.overcast_factor;

    const energy::MarkovWeatherEnvironment sunny(sunny_config);
    const energy::MarkovWeatherEnvironment overcast(overcast_config);
    const auto sunny_report = simulate_deployment(
        solution, sunny, energy::PowerManagementIc::Config{},
        study_config());
    const auto overcast_report = simulate_deployment(
        solution, overcast, energy::PowerManagementIc::Config{},
        study_config());
    EXPECT_GE(sunny_report.completion_rate,
              overcast_report.completion_rate);
    EXPECT_GT(sunny_report.total_harvested_j,
              overcast_report.total_harvested_j);
}

TEST(DeploymentTest, SummaryMentionsEveryDay)
{
    const AuTSolution solution = small_solution();
    ASSERT_TRUE(solution.feasible);
    DeploymentConfig config = study_config();
    config.days = 2;
    const energy::DiurnalSolarEnvironment env(
        energy::DiurnalSolarEnvironment::Config{});
    const DeploymentReport report = simulate_deployment(
        solution, env, energy::PowerManagementIc::Config{}, config);
    const std::string summary = report.summary();
    EXPECT_NE(summary.find("day 0"), std::string::npos);
    EXPECT_NE(summary.find("day 1"), std::string::npos);
    EXPECT_NE(summary.find("completed"), std::string::npos);
}

TEST(DeploymentDeathTest, ValidatesInputs)
{
    const AuTSolution solution = small_solution();
    const energy::DiurnalSolarEnvironment env(
        energy::DiurnalSolarEnvironment::Config{});
    DeploymentConfig config = study_config();
    config.days = 0;
    EXPECT_EXIT(simulate_deployment(solution, env,
                                    energy::PowerManagementIc::Config{},
                                    config),
                ::testing::ExitedWithCode(1), "days");

    config = study_config();
    AuTSolution broken = solution;
    broken.feasible = false;
    EXPECT_EXIT(simulate_deployment(broken, env,
                                    energy::PowerManagementIc::Config{},
                                    config),
                ::testing::ExitedWithCode(1), "feasible");
}

}  // namespace
}  // namespace chrysalis::core

/// \file
/// Tests for campaign resilience: the JSONL result journal, resume after
/// a mid-run kill (byte-identical CSV, completed cases not re-run) and
/// crash isolation of misbehaving cases.

#include "core/campaign_journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/string_utils.hpp"
#include "dnn/model_zoo.hpp"

namespace chrysalis::core {
namespace {

search::ExplorerOptions
small_options(std::uint64_t seed = 3)
{
    search::ExplorerOptions options;
    options.outer.population = 8;
    options.outer.generations = 4;
    options.outer.seed = seed;
    options.inner.max_candidates_per_dim = 4;
    return options;
}

std::vector<CampaignCase>
two_cases()
{
    std::vector<CampaignCase> cases;
    cases.push_back({"conv-latsp", dnn::make_simple_conv(),
                     search::DesignSpace::existing_aut(),
                     {search::ObjectiveKind::kLatSp, 0.0, 0.0}});
    cases.push_back({"kws-lat", dnn::make_kws_mlp(),
                     search::DesignSpace::existing_aut(),
                     {search::ObjectiveKind::kLatency, 10.0, 0.0}});
    return cases;
}

/// Fresh journal path in the test temp dir (removed up front so reruns
/// of the test binary never see a stale file).
std::string
journal_path(const char* name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string
deterministic_csv(const CampaignResult& result)
{
    std::ostringstream os;
    result.write_csv(os, CsvColumns::kDeterministic);
    return os.str();
}

TEST(CampaignJournalTest, RecordRoundTripsThroughJson)
{
    JournalRecord record;
    record.key = "00ff00ff00ff00ff00ff00ff00ff00ff";
    record.label = "tricky \"label\"\nwith,commas\\and\tescapes";
    record.objective_label = "lat*sp";
    record.feasible = true;
    record.family = 1;
    record.solar_cm2 = 1.0 / 3.0;
    record.capacitance_f = 4.7e-300;
    record.arch = 1;
    record.n_pe = 168;
    record.cache_bytes = 2048;
    record.mean_latency_s = 0.1234567890123456789;
    record.lat_sp = 1e300;
    record.score = -0.0;
    record.evaluations = 1234567890123LL;
    record.cache_hits = 17;
    record.cache_misses = 19;
    record.search_wall_time_s = 2.5;
    record.wall_time_s = 3.25;
    record.failure_code = "timeout";
    record.failure_detail = "after 300000 s";
    record.attempts = 2;

    JournalRecord parsed;
    ASSERT_TRUE(parse_json_line(to_json_line(record), parsed));
    EXPECT_EQ(parsed.key, record.key);
    EXPECT_EQ(parsed.label, record.label);
    EXPECT_EQ(parsed.objective_label, record.objective_label);
    EXPECT_EQ(parsed.feasible, record.feasible);
    EXPECT_EQ(parsed.family, record.family);
    EXPECT_EQ(parsed.solar_cm2, record.solar_cm2);  // bit-exact
    EXPECT_EQ(parsed.capacitance_f, record.capacitance_f);
    EXPECT_EQ(parsed.arch, record.arch);
    EXPECT_EQ(parsed.n_pe, record.n_pe);
    EXPECT_EQ(parsed.cache_bytes, record.cache_bytes);
    EXPECT_EQ(parsed.mean_latency_s, record.mean_latency_s);
    EXPECT_EQ(parsed.lat_sp, record.lat_sp);
    EXPECT_EQ(parsed.score, record.score);
    EXPECT_EQ(parsed.evaluations, record.evaluations);
    EXPECT_EQ(parsed.cache_hits, record.cache_hits);
    EXPECT_EQ(parsed.cache_misses, record.cache_misses);
    EXPECT_EQ(parsed.search_wall_time_s, record.search_wall_time_s);
    EXPECT_EQ(parsed.wall_time_s, record.wall_time_s);
    EXPECT_EQ(parsed.failure_code, record.failure_code);
    EXPECT_EQ(parsed.failure_detail, record.failure_detail);
    EXPECT_EQ(parsed.attempts, record.attempts);
}

TEST(CampaignJournalTest, TornAndMalformedLinesAreSkipped)
{
    const std::string path = journal_path("torn_journal.jsonl");
    JournalRecord record;
    record.key = "k1";
    record.label = "good";
    record.objective_label = "lat";
    append_campaign_journal(path, record);
    {
        // A kill mid-write leaves a torn tail; garbage must not load.
        std::ofstream out(path, std::ios::app);
        out << R"({"key":"k2","label":"torn)" << '\n';
        out << "not json at all\n";
        out << "{}\n";
    }
    const auto loaded = load_campaign_journal(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.count("k1"), 1u);
    EXPECT_EQ(loaded.at("k1").label, "good");
}

TEST(CampaignJournalTest, MissingFileLoadsEmpty)
{
    EXPECT_TRUE(load_campaign_journal(
                    ::testing::TempDir() + "does_not_exist.jsonl")
                    .empty());
}

TEST(CampaignJournalTest, LastRecordWinsOnDuplicateKeys)
{
    const std::string path = journal_path("dup_journal.jsonl");
    JournalRecord first;
    first.key = "k";
    first.label = "old";
    JournalRecord second = first;
    second.label = "new";
    append_campaign_journal(path, first);
    append_campaign_journal(path, second);
    const auto loaded = load_campaign_journal(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.at("k").label, "new");
}

TEST(CampaignResumeTest, SecondRunIsServedEntirelyFromJournal)
{
    CampaignOptions options;
    options.journal_path = journal_path("resume_full.jsonl");
    const CampaignResult first =
        run_campaign(two_cases(), small_options(), options);
    EXPECT_EQ(first.journal_skips, 0u);
    const CampaignResult second =
        run_campaign(two_cases(), small_options(), options);
    EXPECT_EQ(second.journal_skips, 2u);
    for (const auto& entry : second.entries)
        EXPECT_TRUE(entry.from_journal) << entry.label;
    EXPECT_EQ(deterministic_csv(first), deterministic_csv(second));
}

TEST(CampaignResumeTest, ResumeAfterKillReproducesCsvByteForByte)
{
    // Reference: an uninterrupted run with no journal at all.
    const CampaignResult reference =
        run_campaign(two_cases(), small_options());

    // "Killed" run: journal a full campaign, then truncate the file to
    // its first line plus a torn tail — the on-disk state after dying
    // mid-write of the second record.
    CampaignOptions options;
    options.journal_path = journal_path("resume_kill.jsonl");
    run_campaign(two_cases(), small_options(), options);
    std::string first_line;
    {
        std::ifstream in(options.journal_path);
        ASSERT_TRUE(static_cast<bool>(std::getline(in, first_line)));
    }
    {
        std::ofstream out(options.journal_path, std::ios::trunc);
        out << first_line << '\n'
            << R"({"key":"abcd","label":"torn mid-wri)";
    }

    const CampaignResult resumed =
        run_campaign(two_cases(), small_options(), options);
    EXPECT_EQ(resumed.journal_skips, 1u);
    int recomputed = 0;
    for (const auto& entry : resumed.entries)
        recomputed += entry.from_journal ? 0 : 1;
    EXPECT_EQ(recomputed, 1);
    EXPECT_EQ(deterministic_csv(reference), deterministic_csv(resumed));
}

TEST(CampaignResumeTest, StaleJournalFromDifferentOptionsIsIgnored)
{
    CampaignOptions options;
    options.journal_path = journal_path("resume_stale.jsonl");
    run_campaign(two_cases(), small_options(3), options);
    // Different outer seed => different case keys => nothing to reuse.
    const CampaignResult rerun =
        run_campaign(two_cases(), small_options(4), options);
    EXPECT_EQ(rerun.journal_skips, 0u);
}

TEST(CampaignIsolationTest, CrashingCasesAreRecordedNotFatal)
{
    // An empty environment list makes every case's explorer fatal();
    // with isolation on, the campaign must survive and report kCrashed.
    search::ExplorerOptions bad = small_options();
    bad.k_eh_envs.clear();
    CampaignOptions options;
    options.isolate_failures = true;
    options.max_attempts = 2;
    const CampaignResult result =
        run_campaign(two_cases(), bad, options);
    ASSERT_EQ(result.entries.size(), 2u);
    for (const auto& entry : result.entries) {
        EXPECT_FALSE(entry.solution.feasible) << entry.label;
        EXPECT_EQ(entry.solution.failure.code,
                  fault::FailureCode::kCrashed)
            << entry.label;
        EXPECT_EQ(entry.attempts, 2) << entry.label;
        EXPECT_GT(entry.solution.score, 0.0);
    }
    std::ostringstream os;
    result.write_csv(os);
    EXPECT_NE(os.str().find("crashed"), std::string::npos);
}

TEST(CampaignIsolationDeathTest, WithoutIsolationTheCrashIsFatal)
{
    search::ExplorerOptions bad = small_options();
    bad.k_eh_envs.clear();
    CampaignOptions options;
    options.isolate_failures = false;
    EXPECT_EXIT(run_campaign(two_cases(), bad, options),
                ::testing::ExitedWithCode(1), "environment");
}

TEST(CampaignOptionsDeathTest, ValidationRejectsBadFields)
{
    CampaignOptions negative_threads;
    negative_threads.threads = -1;
    EXPECT_EXIT(run_campaign(two_cases(), small_options(),
                             negative_threads),
                ::testing::ExitedWithCode(1), "threads");

    CampaignOptions zero_attempts;
    zero_attempts.max_attempts = 0;
    EXPECT_EXIT(run_campaign(two_cases(), small_options(), zero_attempts),
                ::testing::ExitedWithCode(1), "max_attempts");

    CampaignOptions bad_backoff;
    bad_backoff.retry_backoff_s = -1.0;
    EXPECT_EXIT(run_campaign(two_cases(), small_options(), bad_backoff),
                ::testing::ExitedWithCode(1), "retry_backoff_s");
}

}  // namespace
}  // namespace chrysalis::core

/// \file
/// Tests for the Chrysalis facade: generation, candidate evaluation,
/// description and step-simulation validation.

#include "core/chrysalis.hpp"

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"

namespace chrysalis::core {
namespace {

ChrysalisInputs
small_inputs()
{
    ChrysalisInputs inputs{
        dnn::make_simple_conv(),
        search::DesignSpace::existing_aut(),
        search::Objective{search::ObjectiveKind::kLatSp, 0.0, 0.0},
        search::ExplorerOptions{},
    };
    inputs.options.outer.population = 10;
    inputs.options.outer.generations = 5;
    inputs.options.outer.seed = 77;
    inputs.options.inner.max_candidates_per_dim = 4;
    return inputs;
}

TEST(ChrysalisTest, GenerateProducesFeasibleSolution)
{
    const Chrysalis tool(small_inputs());
    const AuTSolution solution = tool.generate();
    ASSERT_TRUE(solution.feasible);
    EXPECT_GT(solution.mean_latency_s, 0.0);
    EXPECT_NEAR(solution.lat_sp,
                solution.mean_latency_s * solution.hardware.solar_cm2,
                1e-12);
    EXPECT_GT(solution.evaluations, 0);
    EXPECT_FALSE(solution.pareto.empty());
    EXPECT_EQ(solution.mappings.size(), 1u);  // single-layer workload
}

TEST(ChrysalisTest, EvaluateCandidateMatchesObjective)
{
    const Chrysalis tool(small_inputs());
    search::HwCandidate candidate;
    candidate.solar_cm2 = 8.0;
    candidate.capacitance_f = 100e-6;
    const AuTSolution solution = tool.evaluate_candidate(candidate);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.score, solution.lat_sp, 1e-9);
    EXPECT_EQ(solution.evaluations, 0);  // no exploration performed
}

TEST(ChrysalisTest, GeneratedBeatsArbitraryCandidate)
{
    const Chrysalis tool(small_inputs());
    const AuTSolution best = tool.generate();
    search::HwCandidate clunker;
    clunker.solar_cm2 = 30.0;
    clunker.capacitance_f = 5e-3;
    const AuTSolution reference = tool.evaluate_candidate(clunker);
    ASSERT_TRUE(best.feasible);
    if (reference.feasible) {
        EXPECT_LE(best.score, reference.score * (1.0 + 1e-9));
    }
}

TEST(ChrysalisTest, DescribeContainsLoopNest)
{
    const Chrysalis tool(small_inputs());
    const AuTSolution solution = tool.generate();
    const std::string report =
        solution.describe(tool.inputs().model);
    EXPECT_NE(report.find("solar panel"), std::string::npos);
    EXPECT_NE(report.find("capacitor"), std::string::npos);
    EXPECT_NE(report.find("SpatialMap"), std::string::npos);
    EXPECT_NE(report.find("simple_conv"), std::string::npos);
}

TEST(ChrysalisTest, ValidationAgreesWithAnalytic)
{
    const Chrysalis tool(small_inputs());
    const AuTSolution solution = tool.generate();
    ASSERT_TRUE(solution.feasible);
    const ValidationResult validation =
        tool.validate(solution, /*k_eh=*/2e-3, sim::SimConfig{}, 8);
    ASSERT_TRUE(validation.sim.completed)
        << validation.sim.failure.message();
    EXPECT_GT(validation.mean_sim_latency_s, 0.0);
    EXPECT_LT(validation.relative_error, 0.40);
}

TEST(ChrysalisDeathTest, ZeroValidationRunsIsFatal)
{
    const Chrysalis tool(small_inputs());
    const AuTSolution solution = tool.generate();
    EXPECT_EXIT(tool.validate(solution, 2e-3, sim::SimConfig{}, 0),
                ::testing::ExitedWithCode(1), "runs");
}

}  // namespace
}  // namespace chrysalis::core

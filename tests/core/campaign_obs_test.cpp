/// \file
/// Observability of campaign runs: the metric families a run publishes,
/// byte-identical deterministic reports across thread counts, and
/// resume-from-journal runs not double-counting evaluations.

#include "core/campaign.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chrysalis::core {
namespace {

search::ExplorerOptions
small_options(std::uint64_t seed = 3)
{
    search::ExplorerOptions options;
    options.outer.population = 8;
    options.outer.generations = 4;
    options.outer.seed = seed;
    options.inner.max_candidates_per_dim = 4;
    return options;
}

std::vector<CampaignCase>
two_cases()
{
    std::vector<CampaignCase> cases;
    cases.push_back({"conv-latsp", dnn::make_simple_conv(),
                     search::DesignSpace::existing_aut(),
                     {search::ObjectiveKind::kLatSp, 0.0, 0.0}});
    cases.push_back({"kws-lat", dnn::make_kws_mlp(),
                     search::DesignSpace::existing_aut(),
                     {search::ObjectiveKind::kLatency, 10.0, 0.0}});
    return cases;
}

std::string
journal_path(const char* name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

TEST(CampaignObsTest, RunPublishesCoreMetricFamilies)
{
    obs::MetricsRegistry registry;
    {
        obs::ScopedMetrics scope(registry);
        run_campaign(two_cases(), small_options());
    }
    EXPECT_EQ(registry.counter("campaign/runs").value(), 1u);
    EXPECT_EQ(registry.counter("campaign/cases_total").value(), 2u);
    EXPECT_EQ(registry.counter("campaign/cases_evaluated").value(), 2u);
    EXPECT_GT(registry.counter("search/explorations").value(), 0u);
    EXPECT_GT(registry.counter("search/evaluations").value(), 0u);
    EXPECT_GT(registry.counter("search/ga/generations").value(), 0u);
    EXPECT_GT(registry.counter("search/inner/searches").value(), 0u);
    EXPECT_GT(registry.counter("sim/analytic_evals").value(), 0u);
    EXPECT_EQ(registry
                  .histogram("campaign/case_wall_s", {},
                             obs::Stability::kVolatile)
                  .count(),
              2u);
}

TEST(CampaignObsTest, RunRecordsTraceSpans)
{
    obs::TraceSession session;
    {
        obs::ScopedTrace scope(session);
        run_campaign(two_cases(), small_options());
    }
    bool saw_run = false, saw_case = false, saw_generation = false;
    for (const obs::TraceEvent& event : session.merged()) {
        saw_run |= event.name == "campaign/run";
        saw_case |= event.name.rfind("case:", 0) == 0;
        saw_generation |= event.name == "ga/generation";
    }
    EXPECT_TRUE(saw_run);
    EXPECT_TRUE(saw_case);
    EXPECT_TRUE(saw_generation);
}

TEST(CampaignObsTest, DeterministicReportIsThreadCountInvariant)
{
    // The golden check behind the stability model: a fixed-seed campaign
    // must produce a byte-identical deterministic metrics report at any
    // thread count. The memo is disabled because its hit/miss split (and
    // hence the evaluation count that dodged recomputation) is
    // scheduling-dependent — exactly what kVolatile exists for.
    search::ExplorerOptions options = small_options();
    options.cache_capacity = 0;

    std::string reports[2];
    const int thread_counts[2] = {1, 2};
    for (int i = 0; i < 2; ++i) {
        obs::MetricsRegistry registry;
        CampaignOptions campaign_options;
        campaign_options.threads = thread_counts[i];
        {
            obs::ScopedMetrics scope(registry);
            run_campaign(two_cases(), options, campaign_options);
        }
        reports[i] =
            registry.to_json(obs::ReportMode::kDeterministic);
    }
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_NE(reports[0].find("campaign/cases_evaluated"),
              std::string::npos);
}

TEST(CampaignObsTest, ResumedRunDoesNotRecountEvaluations)
{
    CampaignOptions options;
    options.journal_path = journal_path("obs_resume.jsonl");
    run_campaign(two_cases(), small_options(), options);

    // Second run restores every case from the journal; a fresh registry
    // must show zero fresh evaluations and N restores.
    obs::MetricsRegistry registry;
    {
        obs::ScopedMetrics scope(registry);
        const CampaignResult resumed =
            run_campaign(two_cases(), small_options(), options);
        EXPECT_EQ(resumed.journal_skips, 2u);
    }
    EXPECT_EQ(registry.counter("campaign/cases_evaluated").value(), 0u);
    EXPECT_EQ(registry.counter("campaign/journal_restored").value(), 2u);
    EXPECT_EQ(registry.counter("campaign/journal_loaded").value(), 2u);
    EXPECT_EQ(registry.counter("search/explorations").value(), 0u);
}

TEST(CampaignObsDeathTest, ValidationRejectsNegativeProgressInterval)
{
    CampaignOptions options;
    options.progress_interval_s = -1.0;
    EXPECT_EXIT(run_campaign(two_cases(), small_options(), options),
                ::testing::ExitedWithCode(1), "progress_interval_s");
}

}  // namespace
}  // namespace chrysalis::core

/// \file
/// CampaignSpec wire round-trips and the deterministic-journal
/// guarantees the distributed coordinator builds on: a spec encodes to
/// flat fields and back without loss, cases built from a spec match the
/// classic CLI campaign scheme, deterministic_record() strips exactly
/// the volatile fields, and a deterministic journal is byte-stable
/// across runs.

#include "core/campaign_spec.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "dnn/model_zoo.hpp"
#include "fault/fault_injector.hpp"
#include "search/bilevel_explorer.hpp"

namespace chrysalis::core {
namespace {

CampaignSpec
small_spec()
{
    CampaignSpec spec;
    spec.cases = 4;
    spec.population = 4;
    spec.generations = 2;
    spec.seed = 11;
    return spec;
}

std::string
read_file(const std::string& path)
{
    std::ifstream input(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(input)) << path;
    std::ostringstream out;
    out << input.rdbuf();
    return out.str();
}

TEST(CampaignSpec, FieldsRoundTripExactly)
{
    CampaignSpec spec;
    spec.model = "har";
    spec.space = "future";
    spec.cases = 7;
    spec.sp_limit_cm2 = 12.5;
    spec.lat_limit_s = 0.333333333333333314829616256247390992939472198486328125;
    spec.population = 10;
    spec.generations = 3;
    spec.seed = 42;
    spec.bright_w_cm2 = 1.75e-3;
    spec.dark_w_cm2 = 0.25e-3;
    spec.fault_dropout = 0.125;
    spec.fault_age_years = 2.5;
    spec.fault_ckpt = 0.0625;
    spec.max_attempts = 3;

    const FlatJsonFields fields = to_fields(spec);
    const CampaignSpec decoded = spec_from_fields(fields);
    EXPECT_EQ(decoded.model, spec.model);
    EXPECT_EQ(decoded.space, spec.space);
    EXPECT_EQ(decoded.cases, spec.cases);
    EXPECT_EQ(decoded.sp_limit_cm2, spec.sp_limit_cm2);
    EXPECT_EQ(decoded.lat_limit_s, spec.lat_limit_s);
    EXPECT_EQ(decoded.population, spec.population);
    EXPECT_EQ(decoded.generations, spec.generations);
    EXPECT_EQ(decoded.seed, spec.seed);
    EXPECT_EQ(decoded.bright_w_cm2, spec.bright_w_cm2);
    EXPECT_EQ(decoded.dark_w_cm2, spec.dark_w_cm2);
    EXPECT_EQ(decoded.fault_dropout, spec.fault_dropout);
    EXPECT_EQ(decoded.fault_age_years, spec.fault_age_years);
    EXPECT_EQ(decoded.fault_ckpt, spec.fault_ckpt);
    EXPECT_EQ(decoded.max_attempts, spec.max_attempts);

    // Re-encoding the decoded spec must reproduce the exact fields —
    // this is what makes run_case requests cache-keyable.
    EXPECT_EQ(to_fields(decoded), fields);
}

TEST(CampaignSpec, DefaultsSurviveAnEmptyFieldSet)
{
    const CampaignSpec defaults;
    const CampaignSpec decoded = spec_from_fields({});
    EXPECT_EQ(decoded.model, defaults.model);
    EXPECT_EQ(decoded.cases, defaults.cases);
    EXPECT_EQ(decoded.population, defaults.population);
    EXPECT_EQ(decoded.seed, defaults.seed);
    EXPECT_EQ(decoded.max_attempts, defaults.max_attempts);
}

TEST(CampaignSpec, CaseRequestFieldsCarryTheIndex)
{
    const CampaignSpec spec = small_spec();
    const FlatJsonFields fields = case_request_fields(spec, 3);
    std::uint64_t index = 0;
    ASSERT_TRUE(json_get_uint64(fields, "case_index", index));
    EXPECT_EQ(index, 3u);
    // Everything else is to_fields(spec).
    FlatJsonFields base = fields;
    base.erase("case_index");
    EXPECT_EQ(base, to_fields(spec));
}

TEST(CampaignSpec, ObjectiveKindsCycleLikeTheCli)
{
    EXPECT_STREQ(campaign_case_kind(0), "latsp");
    EXPECT_STREQ(campaign_case_kind(1), "lat");
    EXPECT_STREQ(campaign_case_kind(2), "sp");
    EXPECT_STREQ(campaign_case_kind(3), "latsp");
    EXPECT_EQ(campaign_case_label("kws", 4), "kws-lat-4");
}

TEST(CampaignSpec, BuiltCasesMatchTheSpec)
{
    const CampaignSpec spec = small_spec();
    const dnn::Model model = dnn::make_model(spec.model);
    const std::vector<CampaignCase> cases =
        build_campaign_cases(spec, model);
    ASSERT_EQ(cases.size(), 4u);
    for (std::size_t i = 0; i < cases.size(); ++i) {
        EXPECT_EQ(cases[i].label, campaign_case_label("kws", i));
        EXPECT_EQ(cases[i].model.name(), model.name());
    }
    // lat cases carry the panel budget, sp cases the deadline.
    EXPECT_EQ(cases[1].objective.sp_limit_cm2, spec.sp_limit_cm2);
    EXPECT_EQ(cases[2].objective.lat_limit_s, spec.lat_limit_s);
}

TEST(CampaignSpec, ExplorerOptionsCarryBudgetSeedAndFaults)
{
    CampaignSpec spec = small_spec();
    std::unique_ptr<fault::FaultInjector> faults;
    search::ExplorerOptions options =
        build_explorer_options(spec, faults);
    EXPECT_EQ(options.outer.population, spec.population);
    EXPECT_EQ(options.outer.generations, spec.generations);
    EXPECT_EQ(options.outer.seed, spec.seed);
    ASSERT_EQ(options.k_eh_envs.size(), 2u);
    EXPECT_EQ(options.k_eh_envs[0], spec.bright_w_cm2);
    EXPECT_EQ(options.k_eh_envs[1], spec.dark_w_cm2);
    EXPECT_EQ(faults, nullptr);

    spec.fault_dropout = 0.5;
    options = build_explorer_options(spec, faults);
    EXPECT_NE(faults, nullptr);
    EXPECT_EQ(options.faults, faults.get());
}

TEST(CampaignSpec, DeterministicRecordZeroesOnlyWallTimes)
{
    JournalRecord record;
    record.key = "abc";
    record.label = "kws-latsp-0";
    record.score = 1.5;
    record.search_wall_time_s = 3.25;
    record.wall_time_s = 4.5;
    record.attempts = 2;
    const JournalRecord cleaned = deterministic_record(record);
    EXPECT_EQ(cleaned.search_wall_time_s, 0.0);
    EXPECT_EQ(cleaned.wall_time_s, 0.0);
    EXPECT_EQ(cleaned.key, record.key);
    EXPECT_EQ(cleaned.label, record.label);
    EXPECT_EQ(cleaned.score, record.score);
    EXPECT_EQ(cleaned.attempts, record.attempts);
}

TEST(CampaignSpec, RecordFieldsRoundTripThroughAResponseBody)
{
    JournalRecord record;
    record.label = "kws-sp-2";
    record.objective_label = "sp";
    record.feasible = true;
    record.family = 1;
    record.solar_cm2 = 9.25;
    record.capacitance_f = 6.25e-5;
    record.arch = 2;
    record.n_pe = 8;
    record.cache_bytes = 4096;
    record.mean_latency_s = 0.125;
    record.lat_sp = 1.15625;
    record.score = 9.25;
    record.evaluations = 40;
    record.cache_hits = 7;
    record.cache_misses = 33;
    record.cache_evictions = 2;
    record.failure_code = "energy_depleted";
    record.failure_detail = "dropout at t=1.5";
    record.attempts = 2;

    std::string body = "{";
    append_record_fields(body, record);
    body += '}';
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(body, fields));
    JournalRecord decoded;
    ASSERT_TRUE(campaign_record_from_fields(fields, decoded));

    EXPECT_EQ(decoded.label, record.label);
    EXPECT_EQ(decoded.objective_label, record.objective_label);
    EXPECT_EQ(decoded.feasible, record.feasible);
    EXPECT_EQ(decoded.family, record.family);
    EXPECT_EQ(decoded.solar_cm2, record.solar_cm2);
    EXPECT_EQ(decoded.capacitance_f, record.capacitance_f);
    EXPECT_EQ(decoded.arch, record.arch);
    EXPECT_EQ(decoded.n_pe, record.n_pe);
    EXPECT_EQ(decoded.cache_bytes, record.cache_bytes);
    EXPECT_EQ(decoded.mean_latency_s, record.mean_latency_s);
    EXPECT_EQ(decoded.lat_sp, record.lat_sp);
    EXPECT_EQ(decoded.score, record.score);
    EXPECT_EQ(decoded.evaluations, record.evaluations);
    EXPECT_EQ(decoded.cache_hits, record.cache_hits);
    EXPECT_EQ(decoded.cache_misses, record.cache_misses);
    EXPECT_EQ(decoded.cache_evictions, record.cache_evictions);
    EXPECT_EQ(decoded.failure_code, record.failure_code);
    EXPECT_EQ(decoded.failure_detail, record.failure_detail);
    EXPECT_EQ(decoded.attempts, record.attempts);
    // The wire carries no identity or wall-clock fields.
    EXPECT_TRUE(decoded.key.empty());
    EXPECT_EQ(decoded.search_wall_time_s, 0.0);
    EXPECT_EQ(decoded.wall_time_s, 0.0);
}

TEST(CampaignSpec, MissingRecordFieldsAreRejected)
{
    JournalRecord record;
    record.label = "x";
    std::string body = "{";
    append_record_fields(body, record);
    body += '}';
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(body, fields));
    fields.erase("score");
    JournalRecord decoded;
    EXPECT_FALSE(campaign_record_from_fields(fields, decoded));
}

TEST(CampaignSpec, DeterministicJournalIsByteStableAcrossRuns)
{
    const CampaignSpec spec = small_spec();
    const dnn::Model model = dnn::make_model(spec.model);
    const std::vector<CampaignCase> cases =
        build_campaign_cases(spec, model);
    std::unique_ptr<fault::FaultInjector> faults;
    const search::ExplorerOptions base =
        build_explorer_options(spec, faults);

    const std::string path_a = "campaign_spec_test_a.jsonl";
    const std::string path_b = "campaign_spec_test_b.jsonl";
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    CampaignOptions options;
    options.threads = 1;
    options.deterministic_journal = true;
    options.journal_path = path_a;
    run_campaign(cases, base, options);
    options.journal_path = path_b;
    run_campaign(cases, base, options);

    const std::string bytes_a = read_file(path_a);
    const std::string bytes_b = read_file(path_b);
    EXPECT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, bytes_b);
    // Volatile fields really are zeroed on every line.
    EXPECT_EQ(bytes_a.find("\"wall_time_s\":0,"),
              bytes_a.find("\"wall_time_s\":"));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

}  // namespace
}  // namespace chrysalis::core

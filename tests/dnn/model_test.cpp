/// \file
/// Tests for model aggregation (params, MACs, activation footprints).

#include "dnn/model.hpp"

#include <gtest/gtest.h>

namespace chrysalis::dnn {
namespace {

Model
tiny_model()
{
    Model model("tiny", {3, 8, 8}, 2);
    model.add_layer(make_conv2d("c1", 3, 4, 8, 8, 3, 1, 1));
    model.add_layer(make_pool("p1", 4, 8, 8, 2, 2));
    model.add_layer(make_dense("fc", 4 * 4 * 4, 2));
    return model;
}

TEST(ModelTest, LayerBookkeeping)
{
    const Model model = tiny_model();
    EXPECT_EQ(model.layer_count(), 3u);
    EXPECT_EQ(model.weight_layer_count(), 2u);  // conv + dense
    EXPECT_EQ(model.layer(0).name, "c1");
    EXPECT_EQ(model.layer(2).kind, LayerKind::kDense);
}

TEST(ModelTest, TotalsAreSums)
{
    const Model model = tiny_model();
    std::int64_t params = 0, macs = 0, flops = 0;
    for (const auto& layer : model.layers()) {
        params += layer.param_count();
        macs += layer.macs();
        flops += layer.flops();
    }
    EXPECT_EQ(model.total_params(), params);
    EXPECT_EQ(model.total_macs(), macs);
    EXPECT_EQ(model.total_flops(), flops);
    EXPECT_EQ(model.total_weight_bytes(), params * 2);
}

TEST(ModelTest, PeakActivationCoversWorstLayer)
{
    const Model model = tiny_model();
    std::int64_t worst = 0;
    for (const auto& layer : model.layers()) {
        worst = std::max(worst, (layer.input_elems() +
                                 layer.output_elems()) * 2);
    }
    EXPECT_EQ(model.peak_activation_bytes(), worst);
}

TEST(ModelTest, TotalDataBytesIncludesWeights)
{
    const Model model = tiny_model();
    EXPECT_GT(model.total_data_bytes(),
              model.total_weight_bytes());
}

TEST(ModelTest, ElementBytesPropagates)
{
    Model int8_model("int8", {3, 8, 8}, 1);
    int8_model.add_layer(make_dense("fc", 10, 10));
    EXPECT_EQ(int8_model.total_weight_bytes(),
              int8_model.total_params());
}

TEST(ModelTest, EmptyModelTotalsAreZero)
{
    Model model("empty", {1, 1, 1});
    EXPECT_EQ(model.total_params(), 0);
    EXPECT_EQ(model.total_macs(), 0);
    EXPECT_EQ(model.weight_layer_count(), 0u);
}

TEST(ModelDeathTest, RejectsBadInputShape)
{
    EXPECT_EXIT(Model("bad", {0, 8, 8}), ::testing::ExitedWithCode(1),
                "input shape");
}

TEST(ModelDeathTest, RejectsBadElementBytes)
{
    EXPECT_EXIT(Model("bad", {1, 1, 1}, 0), ::testing::ExitedWithCode(1),
                "element_bytes");
    EXPECT_EXIT(Model("bad", {1, 1, 1}, 16), ::testing::ExitedWithCode(1),
                "element_bytes");
}

TEST(ModelDeathTest, LayerIndexOutOfRangePanics)
{
    const Model model = tiny_model();
    EXPECT_DEATH(model.layer(99), "out of range");
}

}  // namespace
}  // namespace chrysalis::dnn

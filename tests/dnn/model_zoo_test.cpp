/// \file
/// Validates the model zoo against the paper's Table IV / Table V
/// parameter and FLOP counts. The paper mixes FLOPs = MACs (VGG16,
/// ResNet18, KWS) and FLOPs = 2*MACs (BERT) conventions, so each
/// expectation below targets whichever quantity the table reports.

#include "dnn/model_zoo.hpp"

#include <gtest/gtest.h>

namespace chrysalis::dnn {
namespace {

void
expect_within(double actual, double expected, double rel_tol,
              const std::string& what)
{
    EXPECT_NEAR(actual, expected, expected * rel_tol)
        << what << ": actual " << actual << " vs paper " << expected;
}

// --- Table IV -------------------------------------------------------------

TEST(ModelZooTableIv, SimpleConvParams)
{
    const Model model = make_simple_conv();
    expect_within(static_cast<double>(model.total_params()), 1.2e3, 0.15,
                  "simple_conv params");
    EXPECT_EQ(model.layer_count(), 1u);
    EXPECT_EQ(model.input().c, 3);
    EXPECT_EQ(model.input().h, 32);
}

TEST(ModelZooTableIv, Cifar10CnnMatchesPaper)
{
    const Model model = make_cifar10_cnn();
    expect_within(static_cast<double>(model.total_params()), 77.5e3, 0.15,
                  "cifar10 params");
    // Paper: 9052.1 kFLOPs; our 2*MACs convention lands within ~25%.
    expect_within(static_cast<double>(model.total_flops()), 9052.1e3, 0.30,
                  "cifar10 flops");
    EXPECT_EQ(model.layer_count(), 7u);  // "7 layers" in Table IV
}

TEST(ModelZooTableIv, HarCnnMatchesPaper)
{
    const Model model = make_har_cnn();
    expect_within(static_cast<double>(model.total_params()), 9.4e3, 0.05,
                  "har params");
    // Table IV's 205.2 kFLOPs corresponds to MAC counting here.
    expect_within(static_cast<double>(model.total_macs()), 205.2e3, 0.20,
                  "har macs");
}

TEST(ModelZooTableIv, KwsMlpMatchesPaper)
{
    const Model model = make_kws_mlp();
    expect_within(static_cast<double>(model.total_params()), 49.5e3, 0.10,
                  "kws params");
    // Table IV's 49.5 kFLOPs equals the parameter count: the paper counts
    // one FLOP per MAC for this MLP.
    expect_within(static_cast<double>(model.total_macs()), 49.5e3, 0.10,
                  "kws macs");
    EXPECT_EQ(model.layer_count(), 5u);
    EXPECT_EQ(model.weight_layer_count(), 5u);
}

TEST(ModelZooTableIv, AllUse16BitElements)
{
    for (const auto& name : table4_workloads())
        EXPECT_EQ(make_model(name).element_bytes(), 2) << name;
}

// --- Figure 2 workloads ----------------------------------------------------

TEST(ModelZooFig2, MnistCnnOpsNearPaper)
{
    const Model model = make_mnist_cnn();
    // Fig. 2(a): 1.608 MOPs for the MSP430 MNIST CNN.
    expect_within(static_cast<double>(model.total_flops()), 1.608e6, 0.30,
                  "mnist ops");
}

TEST(ModelZooFig2, HawaiiAppsAreOrdered)
{
    // CNN_b > CNN_s and FC is the smallest compute-wise.
    EXPECT_GT(make_cnn_b().total_macs(), make_cnn_s().total_macs());
    EXPECT_GT(make_cnn_s().total_macs(), make_fc_app().total_macs());
}

// --- Table V ----------------------------------------------------------------

TEST(ModelZooTableV, AlexNetMatchesPaper)
{
    const Model model = make_alexnet();
    // Standard (ungrouped) AlexNet is ~61M params; the paper lists 58.7M.
    expect_within(static_cast<double>(model.total_params()), 58.7e6, 0.10,
                  "alexnet params");
    // Table V: 1.13 GFLOPs = GMACs for the ungrouped original topology.
    expect_within(static_cast<double>(model.total_macs()), 1.13e9, 0.05,
                  "alexnet macs");
}

TEST(ModelZooTableV, Vgg16MatchesPaper)
{
    const Model model = make_vgg16();
    // Table V: 138.3M params, 15.47 GFLOPs (= GMACs, Simonyan counting).
    expect_within(static_cast<double>(model.total_params()), 138.3e6, 0.02,
                  "vgg16 params");
    expect_within(static_cast<double>(model.total_macs()), 15.47e9, 0.05,
                  "vgg16 macs");
}

TEST(ModelZooTableV, Resnet18MatchesPaper)
{
    const Model model = make_resnet18();
    expect_within(static_cast<double>(model.total_params()), 11.7e6, 0.05,
                  "resnet18 params");
    expect_within(static_cast<double>(model.total_macs()), 1.81e9, 0.05,
                  "resnet18 macs");
    EXPECT_EQ(model.weight_layer_count(), 21u);  // 20 conv + fc
}

TEST(ModelZooTableV, BertTinyMatchesPaper)
{
    const Model model = make_bert_tiny();
    expect_within(static_cast<double>(model.total_params()), 56.6e6, 0.05,
                  "bert params");
    // Table V: 1.28 GFLOPs with the 2*MACs convention.
    expect_within(static_cast<double>(model.total_flops()), 1.28e9, 0.05,
                  "bert flops");
}

TEST(ModelZooTableV, AllUseInt8Elements)
{
    for (const auto& name : table5_workloads())
        EXPECT_EQ(make_model(name).element_bytes(), 1) << name;
}

// --- Lookup -----------------------------------------------------------------

TEST(ModelZooLookup, NamesResolve)
{
    for (const auto& name : table4_workloads())
        EXPECT_EQ(make_model(name).name(), name);
    for (const auto& name : table5_workloads())
        EXPECT_EQ(make_model(name).name(), name);
}

TEST(ModelZooLookup, LookupIsCaseInsensitive)
{
    EXPECT_EQ(make_model("VGG16").name(), "vgg16");
    EXPECT_EQ(make_model("BeRt").name(), "bert");
}

TEST(ModelZooLookupDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(make_model("lenet-9000"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

class ZooConsistencyTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ZooConsistencyTest, EveryModelIsInternallyConsistent)
{
    const Model model = make_model(GetParam());
    EXPECT_GT(model.layer_count(), 0u);
    EXPECT_GT(model.total_params(), 0);
    EXPECT_GE(model.total_flops(), model.total_macs());
    EXPECT_GT(model.peak_activation_bytes(), 0);
    // Every layer must have positive extents.
    for (const auto& layer : model.layers()) {
        EXPECT_GE(layer.dims.volume(), 1) << layer.name;
        EXPECT_GE(layer.input_elems(), 1) << layer.name;
        EXPECT_GE(layer.output_elems(), 1) << layer.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooConsistencyTest,
    ::testing::Values("simple_conv", "cifar10", "har", "kws", "mnist",
                      "cnn_b", "cnn_s", "fc", "alexnet", "vgg16",
                      "resnet18", "bert"));

}  // namespace
}  // namespace chrysalis::dnn

/// \file
/// Tests for the plain-text model description format.

#include "dnn/model_io.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"

namespace chrysalis::dnn {
namespace {

TEST(ModelIoTest, ParsesMinimalModel)
{
    std::istringstream input(
        "model tiny 3 8 8 2\n"
        "conv c1 3 4 8 8 3 1 1\n"
        "dense fc 256 10\n");
    const Model model = parse_model(input);
    EXPECT_EQ(model.name(), "tiny");
    EXPECT_EQ(model.input().c, 3);
    EXPECT_EQ(model.element_bytes(), 2);
    ASSERT_EQ(model.layer_count(), 2u);
    EXPECT_EQ(model.layer(0).kind, LayerKind::kConv2d);
    EXPECT_EQ(model.layer(0).dims.k, 4);
    EXPECT_EQ(model.layer(1).dims.c, 256);
}

TEST(ModelIoTest, OptionalArgumentsDefault)
{
    std::istringstream input(
        "model m 3 8 8 1\n"
        "conv c 3 4 8 8 3\n"   // stride=1, pad=0
        "dense d 16 4\n");     // seq=1
    const Model model = parse_model(input);
    EXPECT_EQ(model.layer(0).stride, 1);
    EXPECT_EQ(model.layer(0).dims.y, 6);  // (8-3)/1+1
    EXPECT_EQ(model.layer(1).dims.n, 1);
}

TEST(ModelIoTest, CommentsAndBlanksIgnored)
{
    std::istringstream input(
        "# a test model\n"
        "\n"
        "model m 1 4 4 1\n"
        "  # indented comment\n"
        "dense d 16 2\n");
    EXPECT_EQ(parse_model(input).layer_count(), 1u);
}

TEST(ModelIoTest, AllDirectiveKindsParse)
{
    std::istringstream input(
        "model all 3 16 16 1\n"
        "conv c 3 8 16 16 3 1 1\n"
        "dwconv dw 8 16 16 3 1 1\n"
        "pool p 8 16 16 2 2\n"
        "dense d 512 64 4\n"
        "matmul mm 2 4 8 4\n"
        "embedding e 100 32 6\n");
    const Model model = parse_model(input);
    ASSERT_EQ(model.layer_count(), 6u);
    EXPECT_EQ(model.layer(1).kind, LayerKind::kDepthwise);
    EXPECT_EQ(model.layer(2).kind, LayerKind::kPool);
    EXPECT_EQ(model.layer(4).kind, LayerKind::kMatmul);
    EXPECT_EQ(model.layer(5).kind, LayerKind::kEmbedding);
    EXPECT_EQ(model.layer(5).dims.n, 6);
}

class ZooRoundTripTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ZooRoundTripTest, WriteThenParsePreservesAccounting)
{
    const Model original = make_model(GetParam());
    std::istringstream in(model_to_string(original));
    const Model parsed = parse_model(in);
    EXPECT_EQ(parsed.name(), original.name());
    EXPECT_EQ(parsed.layer_count(), original.layer_count());
    EXPECT_EQ(parsed.total_params(), original.total_params());
    EXPECT_EQ(parsed.total_macs(), original.total_macs());
    EXPECT_EQ(parsed.element_bytes(), original.element_bytes());
    for (std::size_t i = 0; i < parsed.layer_count(); ++i) {
        EXPECT_EQ(parsed.layer(i).kind, original.layer(i).kind) << i;
        EXPECT_EQ(parsed.layer(i).dims.volume(),
                  original.layer(i).dims.volume())
            << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooRoundTripTest,
    ::testing::Values("simple_conv", "cifar10", "har", "kws", "mnist",
                      "alexnet", "resnet18", "vgg16", "bert",
                      "mobilenet_tiny"));

TEST(ModelIoDeathTest, ParseErrorsAreFatalWithLineNumbers)
{
    std::istringstream no_model("dense d 4 2\n");
    EXPECT_EXIT(parse_model(no_model), ::testing::ExitedWithCode(1),
                "'model' directive must come first");

    std::istringstream dup(
        "model a 1 1 1 1\nmodel b 1 1 1 1\n");
    EXPECT_EXIT(parse_model(dup), ::testing::ExitedWithCode(1),
                "duplicate");

    std::istringstream bad_int("model m 1 4 4 1\ndense d x 2\n");
    EXPECT_EXIT(parse_model(bad_int), ::testing::ExitedWithCode(1),
                "not an integer");

    std::istringstream unknown("model m 1 4 4 1\nlstm l 4 2\n");
    EXPECT_EXIT(parse_model(unknown), ::testing::ExitedWithCode(1),
                "unknown directive");

    std::istringstream empty("model m 1 4 4 1\n");
    EXPECT_EXIT(parse_model(empty), ::testing::ExitedWithCode(1),
                "no layers");

    std::istringstream missing_arg("model m 1 4 4 1\ndense d 4\n");
    EXPECT_EXIT(parse_model(missing_arg), ::testing::ExitedWithCode(1),
                "missing argument");
}

TEST(ModelIoDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(load_model("/nonexistent/model.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(MobilenetTinyTest, DepthwiseModelIsConsistent)
{
    const Model model = make_mobilenet_tiny();
    EXPECT_GT(model.total_params(), 10000);
    EXPECT_LT(model.total_params(), 100000);
    bool has_depthwise = false;
    for (const auto& layer : model.layers())
        has_depthwise |= layer.kind == LayerKind::kDepthwise;
    EXPECT_TRUE(has_depthwise);
    // Depthwise layers are far cheaper than equivalent full convs.
    for (const auto& layer : model.layers()) {
        if (layer.kind == LayerKind::kDepthwise) {
            EXPECT_EQ(layer.dims.c, 1);
        }
    }
}

}  // namespace
}  // namespace chrysalis::dnn

/// \file
/// Tests for layer factories, loop-dim accounting and shape inference.

#include "dnn/layer.hpp"

#include <gtest/gtest.h>

namespace chrysalis::dnn {
namespace {

TEST(LayerTest, Conv2dShapeInference)
{
    // 3x32x32 input, 16 filters of 3x3, stride 1, pad 1 -> 16x32x32.
    const Layer layer = make_conv2d("c", 3, 16, 32, 32, 3, 1, 1);
    EXPECT_EQ(layer.dims.k, 16);
    EXPECT_EQ(layer.dims.c, 3);
    EXPECT_EQ(layer.dims.y, 32);
    EXPECT_EQ(layer.dims.x, 32);
    EXPECT_EQ(layer.dims.r, 3);
    EXPECT_EQ(layer.dims.s, 3);
}

TEST(LayerTest, Conv2dStrideAndNoPadding)
{
    // (32 - 5)/9 + 1 = 4.
    const Layer layer = make_conv2d("c", 3, 16, 32, 32, 5, 9, 0);
    EXPECT_EQ(layer.dims.y, 4);
    EXPECT_EQ(layer.dims.x, 4);
}

TEST(LayerTest, Conv2dMacsAndParams)
{
    const Layer layer = make_conv2d("c", 3, 16, 32, 32, 3, 1, 1);
    EXPECT_EQ(layer.macs(), 16LL * 3 * 32 * 32 * 3 * 3);
    EXPECT_EQ(layer.flops(), 2 * layer.macs());
    EXPECT_EQ(layer.param_count(), 16LL * 3 * 3 * 3 + 16);
    EXPECT_TRUE(layer.has_weights());
}

TEST(LayerTest, Conv1dCollapsesWidth)
{
    // 1-D convolution: in_w == 1 collapses S and X.
    const Layer layer = make_conv2d("c1d", 9, 12, 128, 1, 5);
    EXPECT_EQ(layer.dims.y, 124);
    EXPECT_EQ(layer.dims.x, 1);
    EXPECT_EQ(layer.dims.r, 5);
    EXPECT_EQ(layer.dims.s, 1);
    EXPECT_EQ(layer.param_count(), 12LL * 9 * 5 * 1 + 12);
}

TEST(LayerTest, DepthwiseParams)
{
    const Layer layer = make_depthwise("dw", 32, 16, 16, 3, 1, 1);
    EXPECT_EQ(layer.kind, LayerKind::kDepthwise);
    EXPECT_EQ(layer.param_count(), 32LL * 3 * 3 + 32);
}

TEST(LayerTest, DenseBasics)
{
    const Layer layer = make_dense("fc", 256, 10);
    EXPECT_EQ(layer.macs(), 2560);
    EXPECT_EQ(layer.param_count(), 2570);
    EXPECT_EQ(layer.input_elems(), 256);
    EXPECT_EQ(layer.output_elems(), 10);
}

TEST(LayerTest, DenseWithSequenceRepeats)
{
    const Layer layer = make_dense("proj", 768, 768, /*seq=*/18);
    EXPECT_EQ(layer.macs(), 18LL * 768 * 768);
    EXPECT_EQ(layer.param_count(), 768LL * 768 + 768);  // seq-independent
    EXPECT_EQ(layer.input_elems(), 18 * 768);
    EXPECT_EQ(layer.output_elems(), 18 * 768);
}

TEST(LayerTest, MatmulHasNoWeights)
{
    // 12 heads x [18 x 64] x [64 x 18].
    const Layer layer = make_matmul("qk", 12, 18, 64, 18);
    EXPECT_EQ(layer.param_count(), 0);
    EXPECT_FALSE(layer.has_weights());
    EXPECT_EQ(layer.macs(), 12LL * 18 * 64 * 18);
}

TEST(LayerTest, PoolBasics)
{
    const Layer layer = make_pool("p", 16, 32, 32, 2, 2);
    EXPECT_EQ(layer.dims.y, 16);
    EXPECT_EQ(layer.dims.x, 16);
    EXPECT_EQ(layer.param_count(), 0);
    // Pool FLOPs are one op per window element (no multiply).
    EXPECT_EQ(layer.flops(), layer.dims.volume());
}

TEST(LayerTest, Pool1d)
{
    const Layer layer = make_pool("p", 12, 124, 1, 2, 2);
    EXPECT_EQ(layer.dims.y, 62);
    EXPECT_EQ(layer.dims.x, 1);
    EXPECT_EQ(layer.dims.s, 1);
}

TEST(LayerTest, EmbeddingHasParamsButNoMacs)
{
    const Layer layer = make_embedding("emb", 27600, 768, 18);
    EXPECT_EQ(layer.macs(), 0);
    EXPECT_EQ(layer.param_count(), 27600LL * 768);
    EXPECT_EQ(layer.output_elems(), 18 * 768);
}

TEST(LayerTest, DimExtentAccessor)
{
    const Layer layer = make_conv2d("c", 3, 16, 32, 32, 3, 1, 1);
    EXPECT_EQ(dim_extent(layer.dims, Dim::kK), 16);
    EXPECT_EQ(dim_extent(layer.dims, Dim::kC), 3);
    EXPECT_EQ(dim_extent(layer.dims, Dim::kY), 32);
    EXPECT_EQ(dim_extent(layer.dims, Dim::kR), 3);
    EXPECT_EQ(dim_extent(layer.dims, Dim::kN), 1);
}

TEST(LayerTest, KindNames)
{
    EXPECT_EQ(to_string(LayerKind::kConv2d), "conv2d");
    EXPECT_EQ(to_string(LayerKind::kDense), "dense");
    EXPECT_EQ(to_string(LayerKind::kPool), "pool");
    EXPECT_EQ(to_string(LayerKind::kEmbedding), "embedding");
    EXPECT_EQ(to_string(Dim::kK), "K");
    EXPECT_EQ(to_string(Dim::kS), "S");
}

TEST(LayerTest, LoopVolumeMatchesProduct)
{
    LoopDims dims;
    dims.n = 2;
    dims.k = 3;
    dims.c = 5;
    dims.y = 7;
    dims.x = 11;
    dims.r = 13;
    dims.s = 17;
    EXPECT_EQ(dims.volume(), 2LL * 3 * 5 * 7 * 11 * 13 * 17);
}

TEST(LayerDeathTest, RejectsImpossibleGeometry)
{
    // Kernel larger than padded input.
    EXPECT_EXIT(make_conv2d("bad", 3, 8, 4, 4, 7, 1, 0),
                ::testing::ExitedWithCode(1), "output extent");
}

TEST(LayerDeathTest, RejectsNonPositiveArguments)
{
    EXPECT_EXIT(make_conv2d("bad", 0, 8, 8, 8, 3),
                ::testing::ExitedWithCode(1), "in_c");
    EXPECT_EXIT(make_dense("bad", 10, 0), ::testing::ExitedWithCode(1),
                "out_features");
    EXPECT_EXIT(make_pool("bad", 4, 8, 8, 0, 1),
                ::testing::ExitedWithCode(1), "window");
}

}  // namespace
}  // namespace chrysalis::dnn

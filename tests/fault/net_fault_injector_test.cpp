/// \file
/// Tests for the network fault injector: spec validation, seed
/// determinism and query-order independence, per-class streams,
/// activation accounting and metrics publication.

#include "fault/net_fault_injector.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "common/stable_hash.hpp"

namespace chrysalis::fault {
namespace {

NetFaultSpec
storm_spec(std::uint64_t seed = 42)
{
    NetFaultSpec spec;
    spec.seed = seed;
    spec.connect_refusal_probability = 0.3;
    spec.accept_stall_probability = 0.25;
    spec.accept_stall_s = 0.004;
    spec.torn_write_probability = 0.5;
    spec.torn_write_chunk_bytes = 5;
    spec.torn_write_stall_s = 0.001;
    spec.reset_probability = 0.2;
    spec.read_delay_probability = 0.4;
    spec.read_delay_s = 0.003;
    return spec;
}

TEST(NetFaultSpecDeathTest, ValidationRejectsOutOfRangeFields)
{
    NetFaultSpec bad_probability;
    bad_probability.torn_write_probability = 1.5;
    EXPECT_EXIT(bad_probability.validate(),
                ::testing::ExitedWithCode(1), "torn_write_probability");

    NetFaultSpec negative_probability;
    negative_probability.connect_refusal_probability = -0.1;
    EXPECT_EXIT(negative_probability.validate(),
                ::testing::ExitedWithCode(1),
                "connect_refusal_probability");

    NetFaultSpec bad_chunk;
    bad_chunk.torn_write_chunk_bytes = 0;
    EXPECT_EXIT(bad_chunk.validate(), ::testing::ExitedWithCode(1),
                "torn_write_chunk_bytes");

    NetFaultSpec bad_stall;
    bad_stall.accept_stall_s = -1.0;
    EXPECT_EXIT(bad_stall.validate(), ::testing::ExitedWithCode(1),
                "accept_stall_s");
}

TEST(NetFaultInjectorTest, DefaultSpecInjectsNothing)
{
    const NetFaultSpec spec;
    EXPECT_FALSE(spec.any_active());
    const NetFaultInjector injector(spec);
    for (std::uint64_t i = 0; i < 200; ++i) {
        EXPECT_FALSE(injector.refuse_connect(i));
        EXPECT_EQ(injector.accept_stall(i), 0.0);
        EXPECT_EQ(injector.write_cap_bytes(7, i), SIZE_MAX);
        EXPECT_FALSE(injector.reset_after_write(7, i));
        EXPECT_EQ(injector.read_delay(7, i), 0.0);
    }
    EXPECT_EQ(injector.activation_counts().total(), 0u);
}

TEST(NetFaultInjectorTest, SameSeedReplaysExactly)
{
    const NetFaultInjector first(storm_spec(7));
    const NetFaultInjector second(storm_spec(7));
    for (std::uint64_t connection = 1; connection <= 8; ++connection) {
        for (std::uint64_t op = 0; op < 64; ++op) {
            EXPECT_EQ(first.refuse_connect(op), second.refuse_connect(op));
            EXPECT_EQ(first.accept_stall(op), second.accept_stall(op));
            EXPECT_EQ(first.write_cap_bytes(connection, op),
                      second.write_cap_bytes(connection, op));
            EXPECT_EQ(first.reset_after_write(connection, op),
                      second.reset_after_write(connection, op));
            EXPECT_EQ(first.read_delay(connection, op),
                      second.read_delay(connection, op));
        }
    }
}

TEST(NetFaultInjectorTest, AnswersAreIndependentOfQueryOrder)
{
    // Decisions are pure functions of (seed, stream, connection, op):
    // a backward sweep must agree with a forward one exactly.
    const NetFaultInjector injector(storm_spec());
    std::vector<std::size_t> forward;
    for (std::uint64_t op = 0; op < 256; ++op)
        forward.push_back(injector.write_cap_bytes(3, op));
    for (std::uint64_t op = 256; op-- > 0;)
        EXPECT_EQ(injector.write_cap_bytes(3, op),
                  forward[static_cast<std::size_t>(op)])
            << op;
}

TEST(NetFaultInjectorTest, DifferentSeedsGiveDifferentSchedules)
{
    const NetFaultInjector first(storm_spec(1));
    const NetFaultInjector second(storm_spec(2));
    int differences = 0;
    for (std::uint64_t op = 0; op < 256; ++op) {
        if (first.reset_after_write(1, op) !=
            second.reset_after_write(1, op))
            ++differences;
    }
    EXPECT_GT(differences, 0);
}

TEST(NetFaultInjectorTest, FaultClassesUseIndependentStreams)
{
    // With every probability at 0.5, the torn-write and reset decisions
    // for the same (connection, op) must not be mirror images of each
    // other across the sweep — distinct stream constants decorrelate
    // the classes.
    NetFaultSpec spec;
    spec.seed = 99;
    spec.torn_write_probability = 0.5;
    spec.reset_probability = 0.5;
    const NetFaultInjector injector(spec);
    int agree = 0;
    const int sweeps = 512;
    for (std::uint64_t op = 0; op < sweeps; ++op) {
        const bool torn = injector.write_cap_bytes(1, op) != SIZE_MAX;
        const bool reset = injector.reset_after_write(1, op);
        if (torn == reset)
            ++agree;
    }
    EXPECT_GT(agree, sweeps / 4);
    EXPECT_LT(agree, 3 * sweeps / 4);
}

TEST(NetFaultInjectorTest, CertainProbabilitiesFireEveryTime)
{
    NetFaultSpec spec;
    spec.seed = 5;
    spec.connect_refusal_probability = 1.0;
    spec.torn_write_probability = 1.0;
    spec.torn_write_chunk_bytes = 3;
    spec.reset_probability = 1.0;
    spec.read_delay_probability = 1.0;
    spec.accept_stall_probability = 1.0;
    const NetFaultInjector injector(spec);
    for (std::uint64_t op = 0; op < 32; ++op) {
        EXPECT_TRUE(injector.refuse_connect(op));
        EXPECT_GT(injector.accept_stall(op), 0.0);
        EXPECT_EQ(injector.write_cap_bytes(1, op), 3u);
        EXPECT_TRUE(injector.reset_after_write(1, op));
        EXPECT_GT(injector.read_delay(1, op), 0.0);
    }
    const NetFaultInjector::ActivationCounts counts =
        injector.activation_counts();
    EXPECT_EQ(counts.connect_refusals, 32u);
    EXPECT_EQ(counts.accept_stalls, 32u);
    EXPECT_EQ(counts.torn_writes, 32u);
    EXPECT_EQ(counts.resets, 32u);
    EXPECT_EQ(counts.read_delays, 32u);
    EXPECT_EQ(counts.total(), 5u * 32u);
}

TEST(NetFaultInjectorTest, PublishExportsActivationGauges)
{
    NetFaultSpec spec;
    spec.seed = 11;
    spec.read_delay_probability = 1.0;
    const NetFaultInjector injector(spec);
    for (std::uint64_t op = 0; op < 10; ++op)
        EXPECT_GT(injector.read_delay(4, op), 0.0);

    obs::MetricsRegistry registry;
    injector.publish(registry);
    EXPECT_EQ(registry.gauge("fault/net/read_delays").value(), 10.0);
    EXPECT_EQ(registry.gauge("fault/net/torn_writes").value(), 0.0);
    // Republish after more activity: gauges are set, not accumulated.
    for (std::uint64_t op = 10; op < 15; ++op)
        EXPECT_GT(injector.read_delay(4, op), 0.0);
    injector.publish(registry);
    EXPECT_EQ(registry.gauge("fault/net/read_delays").value(), 15.0);
}

TEST(NetFaultInjectorTest, HashCoversTheSpec)
{
    StableHash baseline_hash;
    NetFaultInjector(storm_spec(3)).add_to_hash(baseline_hash);
    StableHash same_hash;
    NetFaultInjector(storm_spec(3)).add_to_hash(same_hash);
    EXPECT_EQ(baseline_hash.key(), same_hash.key());

    StableHash different_hash;
    NetFaultInjector(storm_spec(4)).add_to_hash(different_hash);
    EXPECT_FALSE(baseline_hash.key() == different_hash.key());

    NetFaultSpec tweaked = storm_spec(3);
    tweaked.torn_write_chunk_bytes = 6;
    StableHash tweaked_hash;
    NetFaultInjector(tweaked).add_to_hash(tweaked_hash);
    EXPECT_FALSE(baseline_hash.key() == tweaked_hash.key());
}

TEST(NetFaultInjectorTest, DescribeNamesActiveClasses)
{
    const std::string text = NetFaultInjector(storm_spec()).describe();
    EXPECT_NE(text.find("torn"), std::string::npos);
    EXPECT_NE(text.find("reset"), std::string::npos);
    EXPECT_NE(text.find("refuse"), std::string::npos);
}

}  // namespace
}  // namespace chrysalis::fault

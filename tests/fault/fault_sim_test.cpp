/// \file
/// Integration tests of fault injection against the energy subsystem and
/// the step simulator: deterministic replay, dropout storms, ageing,
/// checkpoint corruption and the analytic fault derating.

#include <memory>

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"
#include "fault/fault_injector.hpp"
#include "hw/msp430_lea.hpp"
#include "sim/analytic_evaluator.hpp"
#include "sim/intermittent_simulator.hpp"

namespace chrysalis::fault {
namespace {

dataflow::ModelCost
kws_cost(std::int64_t tiles_k = 4)
{
    const auto model = dnn::make_kws_mlp();
    const hw::Msp430Lea mcu;
    std::vector<dataflow::LayerMapping> mappings(model.layer_count());
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        mappings[i].tiles_k = tiles_k;
        mappings[i].clamp_to(model.layer(i));
    }
    return dataflow::analyze_model(model, mappings, mcu.cost_params());
}

energy::EnergyController
make_controller(double area_cm2, double k_eh, double cap_f,
                double v0 = 3.5)
{
    energy::Capacitor::Config cap;
    cap.capacitance_f = cap_f;
    cap.initial_voltage_v = v0;
    return energy::EnergyController(
        std::make_unique<energy::SolarPanel>(
            area_cm2,
            std::make_shared<energy::ConstantSolarEnvironment>(k_eh,
                                                               "test")),
        energy::Capacitor(cap),
        energy::PowerManagementIc{energy::PowerManagementIc::Config{}});
}

sim::SimConfig
fast_config()
{
    sim::SimConfig config;
    config.step_s = 0.01;
    config.exception_rate = 0.0;
    return config;
}

/// Starved scenario that duty-cycles: the 47 uF capacitor cannot hold
/// one inference's energy, so brown-outs (and thus checkpoint restores)
/// happen mid-tile.
sim::SimResult
starved_run(const FaultInjector* faults,
            double max_sim_time_s = 3.0e5)
{
    const auto cost = kws_cost();
    auto controller = make_controller(1.0, 0.5e-3, 47e-6, 0.0);
    sim::SimConfig config = fast_config();
    config.faults = faults;
    config.max_sim_time_s = max_sim_time_s;
    return sim::simulate_inference(cost, controller, config);
}

TEST(FaultSimTest, InjectionIsDeterministicAcrossRuns)
{
    FaultSpec spec;
    spec.seed = 5;
    spec.dropout_window_s = 10.0;
    spec.dropout_probability = 0.3;
    spec.dropout_duration_s = 2.0;
    spec.ckpt_corruption_rate = 0.2;
    const FaultInjector faults(spec);
    const sim::SimResult a = starved_run(&faults);
    const sim::SimResult b = starved_run(&faults);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.latency_s, b.latency_s);
    EXPECT_EQ(a.tiles_executed, b.tiles_executed);
    EXPECT_EQ(a.energy_cycles, b.energy_cycles);
    EXPECT_EQ(a.ckpt_restores, b.ckpt_restores);
    EXPECT_EQ(a.ckpt_corruptions, b.ckpt_corruptions);
    EXPECT_EQ(a.e_all_j(), b.e_all_j());
}

TEST(FaultSimTest, DropoutStormStretchesLatency)
{
    // Sub-second windows so even this short run crosses many of them.
    FaultSpec spec;
    spec.seed = 3;
    spec.dropout_window_s = 1.0;
    spec.dropout_probability = 0.8;
    spec.dropout_duration_s = 0.5;  // half the window dark
    const FaultInjector faults(spec);
    const sim::SimResult clean = starved_run(nullptr);
    const sim::SimResult stormy = starved_run(&faults);
    ASSERT_TRUE(clean.completed) << clean.failure.message();
    ASSERT_TRUE(stormy.completed) << stormy.failure.message();
    EXPECT_GT(stormy.latency_s, clean.latency_s);
    // The load-side work is the same; only the charging slowed down.
    EXPECT_NEAR(stormy.e_infer_j, clean.e_infer_j,
                0.2 * clean.e_infer_j);
}

TEST(FaultSimTest, TotalBlackoutIsUnavailable)
{
    // A permanent full-depth dropout is a zero-harvest environment: the
    // simulator's turn-on reachability check must report the device
    // unavailable instead of hanging or crashing.
    FaultSpec spec;
    spec.dropout_window_s = 1e9;
    spec.dropout_probability = 1.0;
    spec.dropout_duration_s = 1e9;
    spec.dropout_depth = 0.0;
    const FaultInjector faults(spec);
    const sim::SimResult result =
        starved_run(&faults, /*max_sim_time_s=*/500.0);
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.failure.code, FailureCode::kUnavailable);
}

TEST(FaultSimTest, CheckpointCorruptionForcesReexecution)
{
    FaultSpec spec;
    spec.seed = 11;
    spec.ckpt_corruption_rate = 0.5;
    const FaultInjector faults(spec);
    const sim::SimResult clean = starved_run(nullptr);
    const sim::SimResult corrupted = starved_run(&faults);
    ASSERT_TRUE(clean.completed) << clean.failure.message();
    ASSERT_TRUE(corrupted.completed) << corrupted.failure.message();
    EXPECT_EQ(clean.ckpt_corruptions, 0);
    ASSERT_GT(clean.ckpt_restores, 0);
    EXPECT_GT(corrupted.ckpt_corruptions, 0);
    // Every corruption re-reads a checkpoint and redoes work.
    EXPECT_GT(corrupted.ckpt_restores, clean.ckpt_restores);
    EXPECT_GT(corrupted.latency_s, clean.latency_s);
}

TEST(FaultSimTest, AlwaysCorruptedRestoreCannotLiveLock)
{
    // rate = 1.0: every restore reads garbage, so the run never makes
    // progress past its first brown-out — it must end in a timeout
    // rather than spin forever.
    FaultSpec spec;
    spec.ckpt_corruption_rate = 1.0;
    const FaultInjector faults(spec);
    const sim::SimResult result =
        starved_run(&faults, /*max_sim_time_s=*/500.0);
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.failure.code, FailureCode::kTimeout);
    EXPECT_GT(result.ckpt_corruptions, 0);
}

TEST(FaultSimTest, AgedLeakageSlowsTheDeviceDown)
{
    // Capacitor fade alone can cut either way (a smaller charge quantum
    // wastes less in the final cycle), so isolate leakage growth: a
    // leakier aged capacitor strictly slows every charge phase.
    FaultSpec spec;
    spec.mission_age_years = 10.0;
    spec.cap_fade_per_year = 0.0;
    spec.leakage_growth_per_year = 0.3;  // 1.3^10 ~ 13.8x leakage
    const FaultInjector faults(spec);
    const sim::SimResult young = starved_run(nullptr);
    const sim::SimResult old = starved_run(&faults);
    ASSERT_TRUE(young.completed) << young.failure.message();
    ASSERT_TRUE(old.completed) << old.failure.message();
    EXPECT_GT(old.ledger.leaked_j, young.ledger.leaked_j);
    EXPECT_GT(old.latency_s, young.latency_s);
}

TEST(FaultSimTest, AnalyticDeratingTracksSimulatedStorm)
{
    // with_faults() must derate the analytic environment the same
    // direction the simulator experiences: latency grows under faults.
    const auto cost = kws_cost(1);
    sim::EnergyEnv env;
    env.p_eh_w = 8.0 * 2e-3;
    env.capacitor.capacitance_f = 470e-6;
    const sim::AnalyticResult clean = sim::analytic_evaluate(cost, env);

    FaultSpec spec;
    spec.dropout_window_s = 100.0;
    spec.dropout_probability = 0.5;
    spec.dropout_duration_s = 50.0;
    spec.mission_age_years = 5.0;
    const FaultInjector faults(spec);
    const sim::AnalyticResult derated =
        sim::analytic_evaluate(cost, sim::with_faults(env, faults));
    ASSERT_TRUE(clean.feasible) << clean.failure.message();
    ASSERT_TRUE(derated.feasible) << derated.failure.message();
    EXPECT_GT(derated.latency_s, clean.latency_s);
}

TEST(FaultSimDeathTest, ReplacingAnAttachedModelIsFatal)
{
    const FaultInjector first{FaultSpec{}};
    FaultSpec other_spec;
    other_spec.seed = 2;
    const FaultInjector second{other_spec};
    auto controller = make_controller(8.0, 2e-3, 470e-6);
    controller.attach_fault_model(&first);
    controller.attach_fault_model(&first);  // same model: idempotent
    EXPECT_EXIT(controller.attach_fault_model(&second),
                ::testing::ExitedWithCode(1), "fault model");
}

}  // namespace
}  // namespace chrysalis::fault

/// \file
/// Tests for the structured failure taxonomy: string round-trips,
/// penalty ranking and SimFailure semantics.

#include "fault/failure.hpp"

#include <gtest/gtest.h>

namespace chrysalis::fault {
namespace {

const FailureCode kAllCodes[] = {
    FailureCode::kNone,          FailureCode::kTileExceedsCycle,
    FailureCode::kTimeout,       FailureCode::kNvmCapacityExceeded,
    FailureCode::kMappingInfeasible, FailureCode::kUnavailable,
    FailureCode::kLeakageDominates,  FailureCode::kMalformedInput,
    FailureCode::kCrashed,
};

TEST(FailureTest, CodesRoundTripThroughStrings)
{
    for (const FailureCode code : kAllCodes) {
        const auto text = to_string(code);
        EXPECT_FALSE(text.empty());
        EXPECT_EQ(failure_code_from_string(text), code) << text;
    }
}

TEST(FailureTest, UnknownStringMapsToNone)
{
    EXPECT_EQ(failure_code_from_string("definitely-not-a-code"),
              FailureCode::kNone);
    EXPECT_EQ(failure_code_from_string(""), FailureCode::kNone);
}

TEST(FailureTest, CodeIdentifiersAreUnique)
{
    for (const FailureCode a : kAllCodes) {
        for (const FailureCode b : kAllCodes) {
            if (a != b) {
                EXPECT_NE(to_string(a), to_string(b));
            }
        }
    }
}

TEST(FailureTest, PenaltyRankFollowsDistanceFromFeasibility)
{
    EXPECT_EQ(penalty_rank(FailureCode::kNone), 0);
    int previous = 0;
    for (const FailureCode code : kAllCodes) {
        if (code == FailureCode::kNone)
            continue;
        const int rank = penalty_rank(code);
        EXPECT_GT(rank, previous) << to_string(code);
        previous = rank;
    }
}

TEST(FailureTest, SimFailureBoolAndMessage)
{
    const SimFailure none;
    EXPECT_FALSE(none);

    const SimFailure timeout =
        make_failure(FailureCode::kTimeout, "after 300000 s");
    EXPECT_TRUE(timeout);
    EXPECT_NE(timeout.message().find("after 300000 s"), std::string::npos);

    const SimFailure bare = make_failure(FailureCode::kUnavailable);
    EXPECT_FALSE(bare.message().empty());
}

}  // namespace
}  // namespace chrysalis::fault

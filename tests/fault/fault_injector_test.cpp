/// \file
/// Tests for the seed-deterministic fault injector: spec validation,
/// order-independent determinism, dropout statistics, ageing derates and
/// the checkpoint-corruption stream.

#include "fault/fault_injector.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/stable_hash.hpp"

namespace chrysalis::fault {
namespace {

FaultSpec
storm_spec(std::uint64_t seed = 42)
{
    FaultSpec spec;
    spec.seed = seed;
    spec.dropout_window_s = 100.0;
    spec.dropout_probability = 0.5;
    spec.dropout_duration_s = 20.0;
    spec.dropout_depth = 0.0;
    return spec;
}

TEST(FaultSpecDeathTest, ValidationRejectsOutOfRangeFields)
{
    FaultSpec bad_probability;
    bad_probability.dropout_probability = 1.5;
    EXPECT_EXIT(bad_probability.validate(),
                ::testing::ExitedWithCode(1), "dropout_probability");

    FaultSpec bad_window;
    bad_window.dropout_window_s = 0.0;
    EXPECT_EXIT(bad_window.validate(), ::testing::ExitedWithCode(1),
                "dropout_window_s");

    FaultSpec bad_age;
    bad_age.mission_age_years = -1.0;
    EXPECT_EXIT(bad_age.validate(), ::testing::ExitedWithCode(1),
                "mission_age_years");

    FaultSpec bad_rate;
    bad_rate.ckpt_corruption_rate = -0.1;
    EXPECT_EXIT(bad_rate.validate(), ::testing::ExitedWithCode(1),
                "ckpt_corruption_rate");
}

TEST(FaultInjectorTest, DefaultSpecInjectsNothing)
{
    const FaultSpec spec;
    EXPECT_FALSE(spec.any_active());
    const FaultInjector injector(spec);
    for (double t = 0.0; t < 1000.0; t += 37.0)
        EXPECT_EQ(injector.harvest_factor(t), 1.0) << t;
    EXPECT_EQ(injector.capacitance_scale(), 1.0);
    EXPECT_EQ(injector.leakage_scale(), 1.0);
    EXPECT_EQ(injector.v_on_offset_v(), 0.0);
    EXPECT_EQ(injector.v_off_offset_v(), 0.0);
    EXPECT_FALSE(injector.corrupt_restore(0));
    EXPECT_EQ(injector.mean_harvest_factor(), 1.0);
}

TEST(FaultInjectorTest, AnswersAreIndependentOfQueryOrder)
{
    // Queries are pure functions of (seed, index): forward, backward and
    // repeated sweeps must agree exactly — the property behind
    // threads=N == threads=1 determinism.
    const FaultInjector injector(storm_spec());
    std::vector<double> forward;
    for (int i = 0; i < 500; ++i)
        forward.push_back(injector.harvest_factor(1.7 * i));
    for (int i = 499; i >= 0; --i)
        EXPECT_EQ(injector.harvest_factor(1.7 * i),
                  forward[static_cast<std::size_t>(i)])
            << i;

    std::vector<bool> corrupt;
    FaultSpec spec = storm_spec();
    spec.ckpt_corruption_rate = 0.3;
    const FaultInjector with_corruption(spec);
    for (std::uint64_t i = 0; i < 200; ++i)
        corrupt.push_back(with_corruption.corrupt_restore(i));
    for (std::uint64_t i = 200; i-- > 0;)
        EXPECT_EQ(with_corruption.corrupt_restore(i),
                  corrupt[static_cast<std::size_t>(i)]);
}

TEST(FaultInjectorTest, SameSeedSameSequenceDifferentSeedDiffers)
{
    const FaultInjector a(storm_spec(7));
    const FaultInjector b(storm_spec(7));
    const FaultInjector c(storm_spec(8));
    int differences = 0;
    for (int i = 0; i < 1000; ++i) {
        const double t = 3.1 * i;
        EXPECT_EQ(a.harvest_factor(t), b.harvest_factor(t));
        if (a.harvest_factor(t) != c.harvest_factor(t))
            ++differences;
    }
    EXPECT_GT(differences, 0);
}

TEST(FaultInjectorTest, DropoutFrequencyMatchesProbability)
{
    // ~50% of 100 s windows carry a 20 s dropout => ~10% of samples dark.
    const FaultInjector injector(storm_spec());
    int dark = 0;
    const int samples = 200000;
    for (int i = 0; i < samples; ++i) {
        if (injector.harvest_factor(0.1 * i) < 1.0)
            ++dark;
    }
    const double fraction = static_cast<double>(dark) / samples;
    EXPECT_NEAR(fraction, 0.10, 0.02);
    EXPECT_NEAR(injector.mean_harvest_factor(), 0.90, 1e-12);
}

TEST(FaultInjectorTest, DropoutDepthSetsInStormFactor)
{
    FaultSpec spec = storm_spec();
    spec.dropout_depth = 0.3;
    spec.dropout_probability = 1.0;
    spec.dropout_duration_s = 100.0;  // whole window dark
    const FaultInjector injector(spec);
    for (double t = 1.0; t < 500.0; t += 13.0)
        EXPECT_DOUBLE_EQ(injector.harvest_factor(t), 0.3);
    EXPECT_DOUBLE_EQ(injector.mean_harvest_factor(), 0.3);
}

TEST(FaultInjectorTest, AgeingDeratesCapacitorAndGrowsLeakage)
{
    FaultSpec spec;
    spec.mission_age_years = 5.0;
    spec.cap_fade_per_year = 0.02;
    spec.leakage_growth_per_year = 0.10;
    const FaultInjector injector(spec);
    EXPECT_NEAR(injector.capacitance_scale(), std::pow(0.98, 5.0), 1e-12);
    EXPECT_NEAR(injector.leakage_scale(), std::pow(1.10, 5.0), 1e-12);
    EXPECT_LT(injector.capacitance_scale(), 1.0);
    EXPECT_GT(injector.leakage_scale(), 1.0);
}

TEST(FaultInjectorTest, PmicDriftIsClampedAndStable)
{
    FaultSpec spec;
    spec.seed = 99;
    spec.v_on_drift_sigma_v = 10.0;  // huge sigma: clamp must bite
    spec.v_off_drift_sigma_v = 10.0;
    spec.max_drift_v = 0.25;
    const FaultInjector injector(spec);
    EXPECT_LE(std::abs(injector.v_on_offset_v()), 0.25);
    EXPECT_LE(std::abs(injector.v_off_offset_v()), 0.25);
    // Static property: a second injector with the same seed agrees.
    const FaultInjector again(spec);
    EXPECT_EQ(injector.v_on_offset_v(), again.v_on_offset_v());
    EXPECT_EQ(injector.v_off_offset_v(), again.v_off_offset_v());
}

TEST(FaultInjectorTest, CorruptionFrequencyMatchesRate)
{
    FaultSpec spec;
    spec.ckpt_corruption_rate = 0.25;
    const FaultInjector injector(spec);
    int corrupted = 0;
    const int restores = 100000;
    for (std::uint64_t i = 0; i < restores; ++i) {
        if (injector.corrupt_restore(i))
            ++corrupted;
    }
    EXPECT_NEAR(static_cast<double>(corrupted) / restores, 0.25, 0.01);
}

TEST(FaultInjectorTest, HashDistinguishesSpecs)
{
    const auto key_of = [](const FaultSpec& spec) {
        StableHash hash;
        FaultInjector(spec).add_to_hash(hash);
        return hash.key();
    };
    FaultSpec a = storm_spec();
    FaultSpec b = storm_spec();
    EXPECT_EQ(key_of(a), key_of(b));
    b.ckpt_corruption_rate = 0.01;
    EXPECT_FALSE(key_of(a) == key_of(b));
    FaultSpec c = storm_spec();
    c.seed = 43;
    EXPECT_FALSE(key_of(a) == key_of(c));
}

TEST(FaultInjectorTest, DescribeMentionsActiveClasses)
{
    FaultSpec spec = storm_spec();
    spec.mission_age_years = 3.0;
    spec.ckpt_corruption_rate = 0.05;
    const std::string text = FaultInjector(spec).describe();
    EXPECT_NE(text.find("dropout"), std::string::npos);
    EXPECT_NE(text.find("age"), std::string::npos);
    EXPECT_NE(text.find("ckpt-corrupt"), std::string::npos);

    const std::string idle = FaultInjector(FaultSpec{}).describe();
    EXPECT_NE(idle.find("none"), std::string::npos);
}

}  // namespace
}  // namespace chrysalis::fault

/// \file
/// Unit tests for the analytical cost model (Eqs. 4-6).

#include "dataflow/cost_model.hpp"

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"

namespace chrysalis::dataflow {
namespace {

dnn::Layer
conv_layer()
{
    return dnn::make_conv2d("conv", 16, 32, 16, 16, 3, 1, 1);
}

CostParams
accel_params()
{
    CostParams params;
    params.e_mac_j = 10e-12;
    params.macs_per_s_per_pe = 1e8;
    params.n_pe = 16;
    params.vm_bytes_per_pe = 512;
    params.e_vm_byte_j = 1e-12;
    params.p_mem_w_per_byte = 1e-9;
    params.e_nvm_read_byte_j = 100e-12;
    params.e_nvm_write_byte_j = 300e-12;
    params.nvm_bytes_per_s = 1e9;
    params.p_pe_static_w = 1e-4;
    params.element_bytes = 1;
    params.overlap_transfers = true;
    params.exception_rate = 0.05;
    return params;
}

TEST(CostModelTest, MacsMatchLayer)
{
    const dnn::Layer layer = conv_layer();
    const LayerCost cost = analyze_layer(layer, LayerMapping{},
                                         accel_params());
    EXPECT_EQ(cost.macs, layer.macs());
    EXPECT_TRUE(cost.feasible);
}

TEST(CostModelTest, ComputeEnergyIsMacsTimesEnergy)
{
    const dnn::Layer layer = conv_layer();
    const CostParams params = accel_params();
    const LayerCost cost = analyze_layer(layer, LayerMapping{}, params);
    EXPECT_NEAR(cost.e_compute_j,
                static_cast<double>(layer.macs()) * params.e_mac_j,
                1e-15);
}

TEST(CostModelTest, ComputeTimeFollowsEq6)
{
    const dnn::Layer layer = conv_layer();
    const CostParams params = accel_params();
    LayerMapping mapping;
    mapping.dataflow = Dataflow::kWeightStationary;  // spatial over K=32
    const LayerCost cost = analyze_layer(layer, mapping, params);
    // K=32 over 16 PEs: two full waves, utilization 1.
    EXPECT_DOUBLE_EQ(cost.utilization, 1.0);
    EXPECT_NEAR(cost.compute_time_s,
                static_cast<double>(layer.macs()) /
                    (params.macs_per_s_per_pe * 16.0),
                1e-12);
}

TEST(CostModelTest, PartialWaveLowersUtilization)
{
    const dnn::Layer layer = conv_layer();
    CostParams params = accel_params();
    params.n_pe = 24;
    LayerMapping mapping;
    mapping.dataflow = Dataflow::kWeightStationary;
    const LayerCost cost = analyze_layer(layer, mapping, params);
    // WS folds the K x C = 32*16 = 512 grid onto 24 PEs:
    // 22 waves of 24 slots = 528, utilization 512/528.
    EXPECT_NEAR(cost.utilization, 512.0 / 528.0, 1e-12);
}

TEST(CostModelTest, TileCountPropagates)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_k = 4;
    mapping.tiles_y = 2;
    const LayerCost cost = analyze_layer(layer, mapping, accel_params());
    EXPECT_EQ(cost.n_tile, 8);
    EXPECT_NEAR(cost.tile_energy_j() * 8.0, cost.total_energy_j(), 1e-12);
}

TEST(CostModelTest, CheckpointEnergyFollowsEq5)
{
    const dnn::Layer layer = conv_layer();
    const CostParams params = accel_params();
    LayerMapping mapping;
    mapping.tiles_k = 4;
    const LayerCost cost = analyze_layer(layer, mapping, params);
    // E_ckpt = N_tile (1 + r_exc) N_ckpt (e_r + e_w).
    const double expected =
        4.0 * 1.05 * static_cast<double>(cost.ckpt_bytes) *
        (params.e_nvm_read_byte_j + params.e_nvm_write_byte_j);
    EXPECT_NEAR(cost.e_ckpt_j, expected, expected * 1e-9);
}

TEST(CostModelTest, NvmWritesEqualOutputs)
{
    const dnn::Layer layer = conv_layer();
    const LayerCost cost = analyze_layer(layer, LayerMapping{},
                                         accel_params());
    EXPECT_EQ(cost.nvm_write_bytes, layer.output_elems());  // 1 B/elem
}

TEST(CostModelTest, OverlapReducesTime)
{
    const dnn::Layer layer = conv_layer();
    CostParams params = accel_params();
    params.overlap_transfers = true;
    const LayerCost overlapped =
        analyze_layer(layer, LayerMapping{}, params);
    params.overlap_transfers = false;
    const LayerCost serial = analyze_layer(layer, LayerMapping{}, params);
    EXPECT_LT(overlapped.time_s, serial.time_s);
    EXPECT_NEAR(serial.time_s,
                serial.compute_time_s + serial.nvm_time_s +
                    serial.ckpt_time_s,
                1e-12);
}

TEST(CostModelTest, PoolOpsAreCheaperThanMacs)
{
    // Pooling windows are compare/accumulate ops; at equal loop volume a
    // pool layer must cost pool_op_scale of a conv's compute energy.
    const CostParams params = accel_params();
    const dnn::Layer pool = dnn::make_pool("p", 32, 16, 16, 2, 2);
    const LayerCost cost = analyze_layer(pool, LayerMapping{}, params);
    EXPECT_NEAR(cost.e_compute_j,
                static_cast<double>(pool.macs()) * params.pool_op_scale *
                    params.e_mac_j,
                1e-18);
}

TEST(CostModelTest, EmbeddingIsPureStreaming)
{
    const dnn::Layer layer = dnn::make_embedding("emb", 1000, 64, 4);
    const LayerCost cost = analyze_layer(layer, LayerMapping{},
                                         accel_params());
    EXPECT_EQ(cost.macs, 0);
    EXPECT_DOUBLE_EQ(cost.e_compute_j, 0.0);
    EXPECT_GT(cost.e_nvm_j, 0.0);
    // Only the 4 indexed rows are touched, not the whole table.
    EXPECT_EQ(cost.nvm_read_bytes, 4 * 64);
}

TEST(CostModelTest, InfeasibleWhenStreamBufferExceedsVm)
{
    // A dense layer with a huge reduction cannot stream through 1 PE with
    // a 128 B cache.
    const dnn::Layer layer = dnn::make_dense("fc", 100000, 10);
    CostParams params = accel_params();
    params.n_pe = 1;
    params.vm_bytes_per_pe = 128;
    const LayerCost cost = analyze_layer(layer, LayerMapping{}, params);
    EXPECT_FALSE(cost.feasible);
}

TEST(CostModelTest, ModelCostAggregatesLayers)
{
    const dnn::Model model = dnn::make_cifar10_cnn();
    CostParams params = accel_params();
    params.element_bytes = model.element_bytes();
    const ModelCost cost =
        analyze_model_untiled(model, Dataflow::kWeightStationary, params);
    ASSERT_EQ(cost.layers.size(), model.layer_count());
    double sum = 0.0;
    for (const auto& layer : cost.layers)
        sum += layer.total_energy_j();
    EXPECT_NEAR(cost.total_energy_j(), sum, sum * 1e-12);
    EXPECT_EQ(cost.n_tile, static_cast<std::int64_t>(model.layer_count()));
}

TEST(CostModelTest, MaxTileEnergyIsMaxOverLayers)
{
    const dnn::Model model = dnn::make_cifar10_cnn();
    CostParams params = accel_params();
    params.element_bytes = model.element_bytes();
    const ModelCost cost =
        analyze_model_untiled(model, Dataflow::kWeightStationary, params);
    double peak = 0.0;
    for (const auto& layer : cost.layers)
        peak = std::max(peak, layer.tile_energy_j());
    EXPECT_DOUBLE_EQ(cost.max_tile_energy_j(), peak);
}

TEST(CostModelDeathTest, MappingCountMismatchIsFatal)
{
    const dnn::Model model = dnn::make_cifar10_cnn();
    std::vector<LayerMapping> mappings(2);  // wrong count
    EXPECT_EXIT(analyze_model(model, mappings, accel_params()),
                ::testing::ExitedWithCode(1), "mappings for");
}

TEST(CostModelDeathTest, BadParamsAreFatal)
{
    const dnn::Layer layer = conv_layer();
    CostParams params = accel_params();
    params.n_pe = 0;
    EXPECT_EXIT(analyze_layer(layer, LayerMapping{}, params),
                ::testing::ExitedWithCode(1), "n_pe");
}

}  // namespace
}  // namespace chrysalis::dataflow

/// \file
/// Tests for mapping directives and the Fig. 4 loop-nest expansion.

#include "dataflow/mapping.hpp"

#include <gtest/gtest.h>

namespace chrysalis::dataflow {
namespace {

dnn::Layer
conv_layer()
{
    return dnn::make_conv2d("conv", 16, 32, 16, 16, 3, 1, 1);
}

TEST(MappingTest, DataflowNames)
{
    EXPECT_EQ(to_string(Dataflow::kWeightStationary), "WS");
    EXPECT_EQ(to_string(Dataflow::kOutputStationary), "OS");
    EXPECT_EQ(to_string(Dataflow::kInputStationary), "IS");
    EXPECT_EQ(to_string(Dataflow::kRowStationary), "RS");
    EXPECT_EQ(all_dataflows().size(), 4u);
}

TEST(MappingTest, DirectiveToString)
{
    MappingDirective directive{MappingDirective::Kind::kInterTemp,
                               dnn::Dim::kK, 4};
    EXPECT_EQ(directive.to_string(), "InterTempMap(K, 4)");
    directive.kind = MappingDirective::Kind::kSpatial;
    directive.dim = dnn::Dim::kY;
    EXPECT_EQ(directive.to_string(), "SpatialMap(Y, 4)");
}

TEST(MappingTest, TileCountIsProduct)
{
    LayerMapping mapping;
    mapping.tiles_k = 2;
    mapping.tiles_y = 3;
    mapping.tiles_n = 1;
    EXPECT_EQ(mapping.tile_count(), 6);
}

TEST(MappingTest, ValidityBounds)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    EXPECT_TRUE(mapping.valid_for(layer));  // all-1 is always valid
    mapping.tiles_k = 32;
    EXPECT_TRUE(mapping.valid_for(layer));
    mapping.tiles_k = 33;  // exceeds K extent
    EXPECT_FALSE(mapping.valid_for(layer));
    mapping.tiles_k = 0;
    EXPECT_FALSE(mapping.valid_for(layer));
}

TEST(MappingTest, ClampBringsCountsIntoRange)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_k = 1000;
    mapping.tiles_y = 0;
    mapping.clamp_to(layer);
    EXPECT_EQ(mapping.tiles_k, 32);
    EXPECT_EQ(mapping.tiles_y, 1);
    EXPECT_TRUE(mapping.valid_for(layer));
}

TEST(MappingTest, DirectivesPutInterTempOutermost)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_k = 4;
    mapping.tiles_y = 2;
    const auto nest = mapping.to_directives(layer);
    ASSERT_GE(nest.size(), 3u);
    EXPECT_EQ(nest[0].kind, MappingDirective::Kind::kInterTemp);
    EXPECT_EQ(nest[0].dim, dnn::Dim::kK);
    EXPECT_EQ(nest[0].tile, 4);
    EXPECT_EQ(nest[1].kind, MappingDirective::Kind::kInterTemp);
    EXPECT_EQ(nest[1].dim, dnn::Dim::kY);
    // Exactly one spatial directive, right after the intermittent ones.
    EXPECT_EQ(nest[2].kind, MappingDirective::Kind::kSpatial);
}

TEST(MappingTest, UntiledNestHasNoInterTemp)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    for (const auto& directive : mapping.to_directives(layer))
        EXPECT_NE(directive.kind, MappingDirective::Kind::kInterTemp);
}

TEST(MappingTest, SpatialDimMatchesTaxonomy)
{
    EXPECT_EQ(spatial_dim(Dataflow::kWeightStationary), dnn::Dim::kK);
    EXPECT_EQ(spatial_dim(Dataflow::kOutputStationary), dnn::Dim::kY);
    EXPECT_EQ(spatial_dim(Dataflow::kInputStationary), dnn::Dim::kC);
    EXPECT_EQ(spatial_dim(Dataflow::kRowStationary), dnn::Dim::kY);
}

TEST(MappingTest, NestCoversAllNonTrivialDims)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.dataflow = Dataflow::kWeightStationary;
    const auto nest = mapping.to_directives(layer);
    // K(spatial) + C, Y, X, R, S temporal = 6 directives (N is 1).
    EXPECT_EQ(nest.size(), 6u);
}

TEST(MappingTest, DescribeMentionsLayerAndDataflow)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.dataflow = Dataflow::kRowStationary;
    mapping.tiles_y = 2;
    const std::string text = mapping.describe(layer);
    EXPECT_NE(text.find("conv"), std::string::npos);
    EXPECT_NE(text.find("RS"), std::string::npos);
    EXPECT_NE(text.find("InterTempMap(Y, 2)"), std::string::npos);
}

TEST(MappingDeathTest, DirectivesOnInvalidMappingAreFatal)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_k = 999;
    EXPECT_EXIT(mapping.to_directives(layer), ::testing::ExitedWithCode(1),
                "invalid chunk counts");
}

}  // namespace
}  // namespace chrysalis::dataflow

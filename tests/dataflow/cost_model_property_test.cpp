/// \file
/// Property-based tests for the cost model: the invariants the DSE relies
/// on must hold across broad sweeps of layers, mappings and hardware
/// parameters.
///
///  - More intermittent tiles never reduce NVM traffic or checkpoint
///    energy (Eq. 5's rationale for minimizing N_tile).
///  - More PEs never increase a layer's compute time (Eq. 6).
///  - A larger per-PE cache never increases total energy (pass-count
///    monotonicity).
///  - Energy components are non-negative and sum consistently.

#include "dataflow/cost_model.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"

namespace chrysalis::dataflow {
namespace {

CostParams
base_params()
{
    CostParams params;
    params.e_mac_j = 10e-12;
    params.macs_per_s_per_pe = 1e8;
    params.n_pe = 8;
    params.vm_bytes_per_pe = 512;
    params.e_vm_byte_j = 1e-12;
    params.p_mem_w_per_byte = 1e-9;
    params.e_nvm_read_byte_j = 100e-12;
    params.e_nvm_write_byte_j = 300e-12;
    params.nvm_bytes_per_s = 1e9;
    params.p_pe_static_w = 1e-4;
    params.element_bytes = 1;
    return params;
}

std::vector<dnn::Layer>
probe_layers()
{
    return {
        dnn::make_conv2d("conv_s1", 16, 32, 16, 16, 3, 1, 1),
        dnn::make_conv2d("conv_s2", 3, 96, 224, 224, 11, 4, 2),
        dnn::make_conv2d("conv_1d", 9, 16, 128, 1, 5),
        dnn::make_dense("dense", 512, 256),
        dnn::make_dense("dense_seq", 768, 768, 18),
        dnn::make_pool("pool", 32, 16, 16, 2, 2),
        dnn::make_depthwise("dw", 32, 28, 28, 3, 1, 1),
    };
}

using SweepParam = std::tuple<std::size_t /*layer index*/, Dataflow>;

class CostSweepTest : public ::testing::TestWithParam<SweepParam>
{
  protected:
    dnn::Layer layer_ = probe_layers()[std::get<0>(GetParam())];
    Dataflow dataflow_ = std::get<1>(GetParam());
};

TEST_P(CostSweepTest, EnergyComponentsNonNegativeAndConsistent)
{
    LayerMapping mapping;
    mapping.dataflow = dataflow_;
    const LayerCost cost = analyze_layer(layer_, mapping, base_params());
    EXPECT_GE(cost.e_compute_j, 0.0);
    EXPECT_GE(cost.e_vm_j, 0.0);
    EXPECT_GE(cost.e_nvm_j, 0.0);
    EXPECT_GE(cost.e_static_j, 0.0);
    EXPECT_GE(cost.e_ckpt_j, 0.0);
    EXPECT_NEAR(cost.total_energy_j(),
                cost.e_compute_j + cost.e_vm_j + cost.e_nvm_j +
                    cost.e_static_j + cost.e_ckpt_j,
                1e-18);
    EXPECT_GT(cost.time_s, 0.0);
    EXPECT_GE(cost.utilization, 0.0);
    EXPECT_LE(cost.utilization, 1.0);
}

TEST_P(CostSweepTest, MoreTilesNeverReduceCheckpointVolumeOrWrites)
{
    // Note: finer tiling CAN reduce NVM re-streaming (smaller tiles shrink
    // the stationary working set, like extra cache); what tiling always
    // costs is checkpoint state. Outputs are committed exactly once
    // regardless of tiling.
    const CostParams params = base_params();
    LayerMapping coarse;
    coarse.dataflow = dataflow_;
    LayerCost prev = analyze_layer(layer_, coarse, params);
    for (std::int64_t splits : {2, 4, 8}) {
        LayerMapping fine;
        fine.dataflow = dataflow_;
        fine.tiles_k = splits;
        fine.tiles_y = 2;
        fine.clamp_to(layer_);
        const LayerCost cost = analyze_layer(layer_, fine, params);
        if (fine.tile_count() <= prev.n_tile)
            continue;  // clamped away for small layers
        // Outputs are committed once regardless of tiling; the cost model
        // sizes every tile like the largest one, so ragged splits may
        // overcount by up to one tile's worth.
        EXPECT_GE(cost.nvm_write_bytes, prev.nvm_write_bytes)
            << "splits=" << splits;
        EXPECT_LE(static_cast<double>(cost.nvm_write_bytes),
                  static_cast<double>(prev.nvm_write_bytes) * 1.25)
            << "splits=" << splits;
        // Total checkpointed bytes N_tile * N_ckpt never shrink.
        EXPECT_GE(cost.n_tile * cost.ckpt_bytes,
                  static_cast<std::int64_t>(
                      0.99 * static_cast<double>(prev.n_tile *
                                                 prev.ckpt_bytes)))
            << "splits=" << splits;
        prev = cost;
    }
}

TEST_P(CostSweepTest, MorePesNeverSlowDown)
{
    LayerMapping mapping;
    mapping.dataflow = dataflow_;
    double prev_time = 1e300;
    for (std::int64_t pes : {1, 2, 4, 16, 64, 168}) {
        CostParams params = base_params();
        params.n_pe = pes;
        const LayerCost cost = analyze_layer(layer_, mapping, params);
        EXPECT_LE(cost.compute_time_s, prev_time * (1.0 + 1e-9))
            << "pes=" << pes;
        prev_time = cost.compute_time_s;
    }
}

TEST_P(CostSweepTest, BiggerCacheNeverIncreasesTrafficEnergy)
{
    // A bigger cache legitimately costs more static power AND bigger
    // checkpoints (more live state to save); what must be monotone is the
    // data-movement energy (VM + NVM re-streaming).
    LayerMapping mapping;
    mapping.dataflow = dataflow_;
    double prev_energy = 1e300;
    for (std::int64_t cache : {128, 256, 512, 1024, 2048}) {
        CostParams params = base_params();
        params.vm_bytes_per_pe = cache;
        const LayerCost cost = analyze_layer(layer_, mapping, params);
        const double traffic = cost.e_vm_j + cost.e_nvm_j;
        EXPECT_LE(traffic, prev_energy * (1.0 + 1e-9))
            << "cache=" << cache;
        prev_energy = traffic;
    }
}

TEST_P(CostSweepTest, HigherExceptionRateRaisesCkptEnergy)
{
    LayerMapping mapping;
    mapping.dataflow = dataflow_;
    mapping.tiles_k = 2;
    mapping.clamp_to(layer_);
    CostParams params = base_params();
    params.exception_rate = 0.0;
    const double low =
        analyze_layer(layer_, mapping, params).e_ckpt_j;
    params.exception_rate = 0.5;
    const double high =
        analyze_layer(layer_, mapping, params).e_ckpt_j;
    EXPECT_GT(high, low);
}

TEST_P(CostSweepTest, TileEnergyTimesCountEqualsTotal)
{
    LayerMapping mapping;
    mapping.dataflow = dataflow_;
    mapping.tiles_k = 4;
    mapping.tiles_y = 2;
    mapping.clamp_to(layer_);
    const LayerCost cost = analyze_layer(layer_, mapping, base_params());
    EXPECT_NEAR(cost.tile_energy_j() *
                    static_cast<double>(cost.n_tile),
                cost.total_energy_j(), cost.total_energy_j() * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    LayersAndDataflows, CostSweepTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 7),
                       ::testing::Values(Dataflow::kWeightStationary,
                                         Dataflow::kOutputStationary,
                                         Dataflow::kInputStationary,
                                         Dataflow::kRowStationary)),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
        return probe_layers()[std::get<0>(param_info.param)].name + "_" +
               to_string(std::get<1>(param_info.param));
    });

TEST(CostModelWholeModelProperty, TilingWholeModelRaisesEnergyButShrinksTiles)
{
    const dnn::Model model = dnn::make_cifar10_cnn();
    CostParams params = base_params();
    params.element_bytes = model.element_bytes();

    const ModelCost untiled =
        analyze_model_untiled(model, Dataflow::kWeightStationary, params);

    std::vector<LayerMapping> tiled(model.layer_count());
    for (std::size_t i = 0; i < tiled.size(); ++i) {
        tiled[i].tiles_k = 4;
        tiled[i].tiles_y = 4;
        tiled[i].clamp_to(model.layer(i));
    }
    const ModelCost fine = analyze_model(model, tiled, params);

    EXPECT_GT(fine.n_tile, untiled.n_tile);
    EXPECT_GE(fine.total_energy_j(), untiled.total_energy_j());
    EXPECT_LT(fine.max_tile_energy_j(), untiled.max_tile_energy_j());
}

}  // namespace
}  // namespace chrysalis::dataflow

/// \file
/// Tests for intermittent-tile geometry and mapping enumeration.

#include "dataflow/tiling.hpp"

#include <gtest/gtest.h>

namespace chrysalis::dataflow {
namespace {

dnn::Layer
conv_layer()
{
    // 16 -> 32 channels, 16x16 output, 3x3 kernel, stride 1, pad 1.
    return dnn::make_conv2d("conv", 16, 32, 16, 16, 3, 1, 1);
}

TEST(TileShapeTest, UntiledCoversWholeLayer)
{
    const dnn::Layer layer = conv_layer();
    const TileShape tile = tile_shape(layer, LayerMapping{});
    EXPECT_EQ(tile.k, 32);
    EXPECT_EQ(tile.y, 16);
    EXPECT_EQ(tile.x, 16);
    EXPECT_EQ(tile.output_elems, 32 * 16 * 16);
    EXPECT_EQ(tile.macs, layer.macs());
    EXPECT_EQ(tile.weight_elems, 32 * 16 * 3 * 3);
}

TEST(TileShapeTest, KSplitDividesWeightsAndOutputs)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_k = 4;
    const TileShape tile = tile_shape(layer, mapping);
    EXPECT_EQ(tile.k, 8);
    EXPECT_EQ(tile.output_elems, 8 * 16 * 16);
    EXPECT_EQ(tile.weight_elems, 8 * 16 * 3 * 3);
    // Inputs are not reduced by a K split (full feature map needed).
    EXPECT_EQ(tile.input_elems, 16 * 16 * 16);
}

TEST(TileShapeTest, YSplitAddsHalo)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_y = 4;  // 4 output rows per tile
    const TileShape tile = tile_shape(layer, mapping);
    EXPECT_EQ(tile.y, 4);
    // 4 output rows at stride 1 with a 3-tall kernel need 6 input rows.
    EXPECT_EQ(tile.input_elems, 16 * 6 * 16);
    // Weights are not reduced by a Y split.
    EXPECT_EQ(tile.weight_elems, 32 * 16 * 3 * 3);
}

TEST(TileShapeTest, HaloClampsToInputHeight)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_y = 1;
    const TileShape tile = tile_shape(layer, mapping);
    // 16 output rows need 18 input rows, clamped to the 16 available.
    EXPECT_EQ(tile.input_elems, 16 * 16 * 16);
}

TEST(TileShapeTest, RaggedSplitUsesCeil)
{
    const dnn::Layer layer = conv_layer();  // K = 32
    LayerMapping mapping;
    mapping.tiles_k = 5;  // 32/5 -> tiles of 7 (ceil)
    const TileShape tile = tile_shape(layer, mapping);
    EXPECT_EQ(tile.k, 7);
}

TEST(TileShapeTest, DenseTilesAlongN)
{
    const dnn::Layer layer = dnn::make_dense("fc", 768, 768, 18);
    LayerMapping mapping;
    mapping.tiles_n = 3;
    const TileShape tile = tile_shape(layer, mapping);
    EXPECT_EQ(tile.n, 6);
    EXPECT_EQ(tile.input_elems, 6 * 768);
    EXPECT_EQ(tile.weight_elems, 768 * 768);
    EXPECT_EQ(tile.macs, 6LL * 768 * 768);
}

TEST(TileShapeTest, PoolTileUsesOwnChannels)
{
    const dnn::Layer layer = dnn::make_pool("p", 16, 32, 32, 2, 2);
    LayerMapping mapping;
    mapping.tiles_k = 4;
    const TileShape tile = tile_shape(layer, mapping);
    EXPECT_EQ(tile.k, 4);
    EXPECT_EQ(tile.weight_elems, 0);
    EXPECT_EQ(tile.input_elems, 4 * 32 * 32);
}

TEST(TileShapeTest, MacsTimesTilesCoversLayer)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_k = 4;
    mapping.tiles_y = 2;
    const TileShape tile = tile_shape(layer, mapping);
    EXPECT_GE(tile.macs * mapping.tile_count(), layer.macs());
}

TEST(ChunkCandidatesTest, SmallExtentReturnsAllDivisors)
{
    EXPECT_EQ(chunk_candidates(12),
              (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
}

TEST(ChunkCandidatesTest, LargeExtentIsBoundedAndKeepsEndpoints)
{
    const auto candidates = chunk_candidates(720720, 8);
    EXPECT_LE(candidates.size(), 8u);
    EXPECT_EQ(candidates.front(), 1);
    EXPECT_EQ(candidates.back(), 720720);
    for (std::int64_t c : candidates)
        EXPECT_EQ(720720 % c, 0);
}

TEST(ChunkCandidatesTest, ExtentOne)
{
    EXPECT_EQ(chunk_candidates(1), (std::vector<std::int64_t>{1}));
}

TEST(EnumerateMappingsTest, CountsAndValidity)
{
    const dnn::Layer layer = conv_layer();
    const auto mappings = enumerate_mappings(
        layer, {Dataflow::kWeightStationary, Dataflow::kOutputStationary},
        4);
    EXPECT_FALSE(mappings.empty());
    for (const auto& mapping : mappings)
        EXPECT_TRUE(mapping.valid_for(layer));
    // 2 dataflows x |K cands| x |Y cands| x |N cands = 1|.
    const auto ks = chunk_candidates(32, 4).size();
    const auto ys = chunk_candidates(16, 4).size();
    EXPECT_EQ(mappings.size(), 2 * ks * ys);
}

TEST(EnumerateMappingsTest, IncludesUntiledMapping)
{
    const dnn::Layer layer = conv_layer();
    const auto mappings =
        enumerate_mappings(layer, {Dataflow::kWeightStationary}, 4);
    bool found_untiled = false;
    for (const auto& mapping : mappings) {
        if (mapping.tile_count() == 1)
            found_untiled = true;
    }
    EXPECT_TRUE(found_untiled);
}

TEST(TilingDeathTest, InvalidMappingIsFatal)
{
    const dnn::Layer layer = conv_layer();
    LayerMapping mapping;
    mapping.tiles_k = 999;
    EXPECT_EXIT(tile_shape(layer, mapping), ::testing::ExitedWithCode(1),
                "invalid");
}

}  // namespace
}  // namespace chrysalis::dataflow

/// \file
/// Network chaos tests for the serve path: the server-side chaos hook
/// (torn writes, resets, read delays) must never change reply *bytes*,
/// the chaos proxy + resilient client must deliver 100% of requests
/// byte-identical to a calm run, and the daemon's self-defenses
/// (slow-loris read timeout, idle reaping, health probes, write-buffer
/// bounds) must trip exactly when advertised.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/flat_json.hpp"
#include "fault/net_fault_injector.hpp"
#include "obs/trace.hpp"
#include "serve/chaos_proxy.hpp"
#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"

namespace {

using namespace chrysalis;

serve::ServerOptions
loopback_options(int threads)
{
    serve::ServerOptions options;
    options.host = "127.0.0.1";
    options.port = 0;
    options.threads = threads;
    return options;
}

/// The deterministic mini-workload shared by the comparison tests:
/// request i carries id i+1.
std::vector<std::pair<std::string, FlatJsonFields>>
mini_workload()
{
    static const char* const kModels[] = {"kws", "har", "simple_conv"};
    std::vector<std::pair<std::string, FlatJsonFields>> items;
    for (int i = 0; i < 30; ++i) {
        FlatJsonFields params;
        params["model"] = kModels[i % 3];
        params["solar_cm2"] = std::to_string(4 + (i % 5));
        items.emplace_back(i % 5 == 4 ? "eval_mapping"
                                      : "eval_design_point",
                          std::move(params));
    }
    return items;
}

/// Replies from a chaos-free single-threaded server — the reference
/// bytes every chaotic run must reproduce.
std::vector<std::string>
reference_replies(
    const std::vector<std::pair<std::string, FlatJsonFields>>& workload)
{
    serve::Server reference(loopback_options(1));
    reference.start();
    serve::Client client;
    EXPECT_TRUE(client.connect("127.0.0.1", reference.port(), 60.0));
    std::vector<std::string> replies;
    for (std::size_t i = 0; i < workload.size(); ++i) {
        client.set_next_id(i + 1);
        serve::Response response;
        EXPECT_TRUE(client.call(workload[i].first, workload[i].second,
                                response));
        replies.push_back(response.raw);
    }
    reference.stop();
    return replies;
}

TEST(ServeChaos, TornServerWritesStillYieldByteIdenticalReplies)
{
    // Torn, stalled, delayed — but never lost: a plain client with a
    // whole-frame deadline must reassemble byte-identical replies.
    fault::NetFaultSpec spec;
    spec.seed = 2024;
    spec.torn_write_probability = 0.9;
    spec.torn_write_chunk_bytes = 5;
    spec.torn_write_stall_s = 0.0005;
    spec.read_delay_probability = 0.3;
    spec.read_delay_s = 0.001;
    const fault::NetFaultInjector chaos(spec);

    serve::ServerOptions options = loopback_options(2);
    options.chaos = &chaos;
    serve::Server server(options);
    server.start();

    const auto workload = mini_workload();
    const std::vector<std::string> expected =
        reference_replies(workload);

    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), 60.0));
    for (std::size_t i = 0; i < workload.size(); ++i) {
        client.set_next_id(i + 1);
        serve::Response response;
        ASSERT_TRUE(client.call(workload[i].first, workload[i].second,
                                response))
            << "request " << i + 1;
        EXPECT_EQ(response.raw, expected[i]) << "request " << i + 1;
    }
    server.stop();
    EXPECT_GT(chaos.activation_counts().torn_writes, 0u);
}

TEST(ServeChaos, ServerResetsAreSurvivedByTheResilientClient)
{
    // Mid-frame RSTs kill connections outright; only the resilient
    // request() path can finish the workload — and the replies must
    // still match the calm reference bytes.
    fault::NetFaultSpec spec;
    spec.seed = 7;
    spec.reset_probability = 0.15;
    spec.torn_write_probability = 0.3;
    spec.torn_write_chunk_bytes = 6;
    spec.torn_write_stall_s = 0.0005;
    const fault::NetFaultInjector chaos(spec);

    serve::ServerOptions options = loopback_options(2);
    options.chaos = &chaos;
    serve::Server server(options);
    server.start();

    const auto workload = mini_workload();
    const std::vector<std::string> expected =
        reference_replies(workload);

    serve::ClientOptions client_options;
    client_options.max_attempts = 16;
    client_options.backoff_base_s = 0.001;
    client_options.backoff_max_s = 0.05;
    client_options.request_timeout_s = 10.0;
    client_options.circuit_breaker_threshold = 0;
    serve::Client client(client_options);
    client.connect("127.0.0.1", server.port());
    for (std::size_t i = 0; i < workload.size(); ++i) {
        client.set_next_id(i + 1);
        serve::Response response;
        ASSERT_EQ(client.request(workload[i].first, workload[i].second,
                                 response),
                  serve::CallStatus::kOk)
            << "request " << i + 1;
        EXPECT_EQ(response.raw, expected[i]) << "request " << i + 1;
    }
    server.stop();
    EXPECT_GT(chaos.activation_counts().resets, 0u);
}

TEST(ServeChaos, ProxyChaosGateDeliversEverythingByteIdentical)
{
    // The full client-side gauntlet: refused connections, torn and
    // delayed reply delivery, mid-frame resets — between the client
    // and a perfectly healthy daemon. 100% eventual success,
    // byte-identical replies.
    fault::NetFaultSpec spec;
    spec.seed = 31;
    spec.connect_refusal_probability = 0.2;
    spec.accept_stall_probability = 0.1;
    spec.accept_stall_s = 0.002;
    spec.torn_write_probability = 0.5;
    spec.torn_write_chunk_bytes = 7;
    spec.torn_write_stall_s = 0.0005;
    spec.reset_probability = 0.1;
    spec.read_delay_probability = 0.2;
    spec.read_delay_s = 0.001;
    const fault::NetFaultInjector chaos(spec);

    serve::Server server(loopback_options(2));
    server.start();

    serve::ChaosProxyOptions proxy_options;
    proxy_options.upstream_port = server.port();
    proxy_options.chaos = &chaos;
    serve::ChaosProxy proxy(proxy_options);
    proxy.start();

    const auto workload = mini_workload();
    const std::vector<std::string> expected =
        reference_replies(workload);

    serve::ClientOptions client_options;
    client_options.max_attempts = 16;
    client_options.backoff_base_s = 0.001;
    client_options.backoff_max_s = 0.05;
    client_options.request_timeout_s = 10.0;
    client_options.circuit_breaker_threshold = 0;
    serve::Client client(client_options);
    client.connect("127.0.0.1", proxy.port());
    for (std::size_t i = 0; i < workload.size(); ++i) {
        client.set_next_id(i + 1);
        serve::Response response;
        ASSERT_EQ(client.request(workload[i].first, workload[i].second,
                                 response),
                  serve::CallStatus::kOk)
            << "request " << i + 1;
        EXPECT_EQ(response.raw, expected[i]) << "request " << i + 1;
    }
    proxy.stop();
    server.stop();
    EXPECT_GT(chaos.activation_counts().total(), 0u);
}

TEST(ServeChaos, SlowLorisHalfFrameIsReapedByReadTimeout)
{
    serve::ServerOptions options = loopback_options(1);
    options.read_timeout_s = 0.1;
    serve::Server server(options);
    server.start();

    serve::Client loris;
    ASSERT_TRUE(loris.connect("127.0.0.1", server.port(), 10.0));
    // Three bytes of a length prefix, then silence: a half-sent frame
    // that an honest peer would have completed within milliseconds.
    ASSERT_TRUE(loris.send_bytes("\x00\x00\x01", 3));

    const double deadline_s = obs::monotonic_seconds() + 5.0;
    while (server.stats().timeouts_read == 0 &&
           obs::monotonic_seconds() < deadline_s)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server.stats().timeouts_read, 1u);
    EXPECT_EQ(server.stats().connections_open, 0u);

    // A well-behaved connection that completes its frames promptly is
    // unaffected by the read timeout.
    serve::Client honest;
    ASSERT_TRUE(honest.connect("127.0.0.1", server.port(), 10.0));
    serve::Response response;
    ASSERT_TRUE(honest.call("server_stats", {}, response));
    EXPECT_TRUE(response.ok);
    server.stop();
}

TEST(ServeChaos, IdleConnectionsAreReapedWhenEnabled)
{
    serve::ServerOptions options = loopback_options(1);
    options.idle_timeout_s = 0.1;
    serve::Server server(options);
    server.start();

    serve::Client idler;
    ASSERT_TRUE(idler.connect("127.0.0.1", server.port(), 10.0));
    serve::Response response;
    ASSERT_TRUE(idler.call("server_stats", {}, response));

    const double deadline_s = obs::monotonic_seconds() + 5.0;
    while (server.stats().timeouts_idle == 0 &&
           obs::monotonic_seconds() < deadline_s)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(server.stats().timeouts_idle, 1u);
    EXPECT_EQ(server.stats().connections_open, 0u);
    server.stop();
}

TEST(ServeChaos, HealthRequestReportsReadiness)
{
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), 10.0));

    serve::Response response;
    ASSERT_TRUE(client.call("health", {}, response));
    EXPECT_TRUE(response.ok);
    std::string status;
    json_get_string(response.fields, "status", status);
    EXPECT_EQ(status, "ready");
    std::uint64_t draining = 1;
    json_get_uint64(response.fields, "draining", draining);
    EXPECT_EQ(draining, 0u);
    std::uint64_t threads = 0;
    json_get_uint64(response.fields, "threads", threads);
    EXPECT_EQ(threads, 1u);

    EXPECT_EQ(server.stats().requests_health, 1u);
    // health reports live state: it must never be served from the memo.
    EXPECT_FALSE(serve::response_is_memoized("health"));
    EXPECT_TRUE(serve::response_is_memoized("eval_design_point"));
    server.stop();
}

TEST(ServeChaosDeathTest, ValidationRejectsHostileDefenseSettings)
{
    serve::ServerOptions negative_read = loopback_options(1);
    negative_read.read_timeout_s = -1.0;
    EXPECT_EXIT(negative_read.validate(), ::testing::ExitedWithCode(1),
                "read_timeout_s");

    serve::ServerOptions negative_idle = loopback_options(1);
    negative_idle.idle_timeout_s = -0.5;
    EXPECT_EXIT(negative_idle.validate(), ::testing::ExitedWithCode(1),
                "idle_timeout_s");

    serve::ServerOptions tiny_buffer = loopback_options(1);
    tiny_buffer.max_write_buffer_bytes = 1024;
    EXPECT_EXIT(tiny_buffer.validate(), ::testing::ExitedWithCode(1),
                "max_write_buffer_bytes");

    serve::ChaosProxyOptions bad_upstream;
    bad_upstream.upstream_port = 0;
    EXPECT_EXIT(bad_upstream.validate(), ::testing::ExitedWithCode(1),
                "upstream_port");
}

}  // namespace

// Live-socket tests for the chrysalis-serve-v1 daemon: every request
// type over a real loopback connection, protocol-robustness cases
// (malformed payloads, oversized frames, mid-request disconnects,
// overload admission) and the headline guarantee — byte-identical
// replies from a multi-threaded server and a single-threaded one.

#include "serve/client.hpp"
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/flat_json.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace chrysalis;

serve::ServerOptions loopback_options(int threads)
{
    serve::ServerOptions options;
    options.host = "127.0.0.1";
    options.port = 0;  // kernel-chosen; tests read server.port()
    options.threads = threads;
    return options;
}

serve::Client connect_to(const serve::Server& server)
{
    serve::Client client;
    EXPECT_TRUE(client.connect("127.0.0.1", server.port(), 60.0));
    return client;
}

TEST(ServeServer, StartResolvesPortAndStopIsIdempotent)
{
    serve::Server server(loopback_options(1));
    server.start();
    EXPECT_TRUE(server.running());
    EXPECT_GT(server.port(), 0);
    server.stop();
    EXPECT_FALSE(server.running());
    server.stop();  // second stop must be a no-op
}

TEST(ServeServer, AnswersEveryRequestType)
{
    serve::Server server(loopback_options(2));
    server.start();
    serve::Client client = connect_to(server);

    serve::Response response;
    ASSERT_TRUE(client.call("eval_design_point", {{"model", "kws"}},
                            response));
    EXPECT_TRUE(response.ok) << response.raw;
    EXPECT_TRUE(response.fields.count("feasible")) << response.raw;

    ASSERT_TRUE(client.call("eval_mapping", {{"model", "kws"}}, response));
    EXPECT_TRUE(response.ok) << response.raw;
    EXPECT_TRUE(response.fields.count("mappings")) << response.raw;

    ASSERT_TRUE(client.call(
        "sim_step", {{"model", "kws"}, {"runs", "1"}}, response));
    EXPECT_TRUE(response.ok) << response.raw;
    EXPECT_TRUE(response.fields.count("completed")) << response.raw;

    ASSERT_TRUE(client.call("server_stats", {}, response));
    EXPECT_TRUE(response.ok) << response.raw;
    std::uint64_t total = 0;
    EXPECT_TRUE(json_get_uint64(response.fields, "requests_total", total));
    EXPECT_GE(total, 3u);

    server.stop();
}

TEST(ServeServer, UnknownTypeGetsStructuredErrorAndConnectionLives)
{
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client = connect_to(server);

    serve::Response response;
    ASSERT_TRUE(client.call("make_coffee", {}, response));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, serve::kErrUnknownType);

    // Same connection still serves valid requests.
    ASSERT_TRUE(client.call("server_stats", {}, response));
    EXPECT_TRUE(response.ok);
    server.stop();
}

TEST(ServeServer, WrongVersionIsRejected)
{
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client = connect_to(server);

    ASSERT_TRUE(client.send_frame(
        "{\"v\":\"chrysalis-serve-v999\",\"id\":4,\"type\":"
        "\"server_stats\"}"));
    std::string payload;
    ASSERT_TRUE(client.recv_frame(payload));
    serve::Response response;
    ASSERT_TRUE(serve::parse_response(payload, response));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, serve::kErrBadVersion);
    EXPECT_EQ(response.id, 4u);
    server.stop();
}

TEST(ServeServer, MalformedJsonKeepsConnectionAlive)
{
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client = connect_to(server);

    ASSERT_TRUE(client.send_frame("{\"v\":unterminated garbage"));
    std::string payload;
    ASSERT_TRUE(client.recv_frame(payload));
    serve::Response response;
    ASSERT_TRUE(serve::parse_response(payload, response));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, serve::kErrBadRequest);

    // The frame itself was well-formed, so the stream is still in sync
    // and the connection must survive for the next request.
    ASSERT_TRUE(client.call("server_stats", {}, response));
    EXPECT_TRUE(response.ok);
    server.stop();
}

TEST(ServeServer, OversizedLengthPrefixGetsBadFrameThenClose)
{
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client = connect_to(server);

    // Announce a 2 MiB payload (no body needed; the prefix alone is the
    // violation). The server must reply bad_frame, then close — the
    // stream past a refused frame cannot be resynchronized.
    const std::size_t huge = serve::kMaxFrameBytes * 2;
    unsigned char prefix[4] = {
        static_cast<unsigned char>((huge >> 24) & 0xff),
        static_cast<unsigned char>((huge >> 16) & 0xff),
        static_cast<unsigned char>((huge >> 8) & 0xff),
        static_cast<unsigned char>(huge & 0xff),
    };
    ASSERT_TRUE(client.send_bytes(prefix, sizeof prefix));

    std::string payload;
    ASSERT_TRUE(client.recv_frame(payload));
    serve::Response response;
    ASSERT_TRUE(serve::parse_response(payload, response));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, serve::kErrBadFrame);

    // After the error reply the server closes: the next read sees EOF.
    EXPECT_FALSE(client.recv_frame(payload));
    server.stop();
}

TEST(ServeServer, MidRequestDisconnectDoesNotKillTheServer)
{
    serve::Server server(loopback_options(2));
    server.start();
    {
        // Half a frame, then vanish.
        serve::Client client = connect_to(server);
        const std::string frame = serve::encode_frame(
            "{\"v\":\"chrysalis-serve-v1\",\"id\":1,\"type\":"
            "\"server_stats\"}");
        ASSERT_TRUE(client.send_bytes(frame.data(), frame.size() / 2));
        client.close();
    }
    {
        // A full request, then vanish before reading the reply.
        serve::Client client = connect_to(server);
        ASSERT_TRUE(client.send_frame(
            "{\"v\":\"chrysalis-serve-v1\",\"id\":2,\"type\":"
            "\"eval_design_point\",\"model\":\"kws\"}"));
        client.close();
    }
    // The server must still be alive and serving.
    serve::Client client = connect_to(server);
    serve::Response response;
    ASSERT_TRUE(client.call("server_stats", {}, response));
    EXPECT_TRUE(response.ok);
    server.stop();
}

TEST(ServeServer, EofAfterRequestsStillGetsEveryReply)
{
    serve::Server server(loopback_options(2));
    server.start();
    serve::Client client = connect_to(server);

    const int n = 5;
    for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(client.send_frame(
            "{\"v\":\"chrysalis-serve-v1\",\"id\":" + std::to_string(i + 1) +
            ",\"type\":\"eval_design_point\",\"model\":\"kws\"}"));
    }
    // Half-close: the server sees EOF after the five requests, must
    // evaluate and flush all five replies, then close.
    client.shutdown_write();
    for (int i = 0; i < n; ++i) {
        std::string payload;
        ASSERT_TRUE(client.recv_frame(payload)) << "reply " << i;
        serve::Response response;
        ASSERT_TRUE(serve::parse_response(payload, response));
        EXPECT_TRUE(response.ok) << payload;
        EXPECT_EQ(response.id, static_cast<std::uint64_t>(i) + 1);
    }
    std::string payload;
    EXPECT_FALSE(client.recv_frame(payload));  // then EOF
    server.stop();
}

TEST(ServeServer, OverloadedRequestsAreRefusedNotDropped)
{
    serve::ServerOptions options = loopback_options(1);
    options.max_inflight = 1;
    options.queue_depth = 1;
    options.batch_max = 1;
    serve::Server server(options);
    server.start();
    serve::Client client = connect_to(server);

    // One write syscall carrying 8 frames: they arrive together, the
    // first is admitted and the burst overflows the depth-1 queue.
    const int n = 8;
    std::string burst;
    for (int i = 0; i < n; ++i) {
        burst += serve::encode_frame(
            "{\"v\":\"chrysalis-serve-v1\",\"id\":" + std::to_string(i + 1) +
            ",\"type\":\"eval_design_point\",\"model\":\"kws\"}");
    }
    ASSERT_TRUE(client.send_bytes(burst.data(), burst.size()));

    // Every request gets exactly one reply — evaluated or refused with
    // a structured `overloaded` error, never silently dropped.
    int ok_replies = 0;
    int overloaded = 0;
    for (int i = 0; i < n; ++i) {
        std::string payload;
        ASSERT_TRUE(client.recv_frame(payload)) << "reply " << i;
        serve::Response response;
        ASSERT_TRUE(serve::parse_response(payload, response));
        if (response.ok) {
            ++ok_replies;
        } else {
            EXPECT_EQ(response.error, serve::kErrOverloaded) << payload;
            ++overloaded;
        }
    }
    EXPECT_EQ(ok_replies + overloaded, n);
    EXPECT_GE(ok_replies, 1);

    const serve::ServerStatsSnapshot stats = server.stats();
    EXPECT_EQ(stats.overload_rejections,
              static_cast<std::uint64_t>(overloaded));
    server.stop();
}

TEST(ServeServer, SharedCacheCountsRepeatsAcrossConnections)
{
    serve::Server server(loopback_options(2));
    server.start();

    const FlatJsonFields params = {{"model", "kws"}, {"solar_cm2", "8"}};
    serve::Response first;
    serve::Response repeat;
    {
        serve::Client client = connect_to(server);
        ASSERT_TRUE(client.call("eval_design_point", params, first));
    }
    {
        serve::Client client = connect_to(server);
        client.set_next_id(1);  // same id => byte-identical full reply
        ASSERT_TRUE(client.call("eval_design_point", params, repeat));
    }
    EXPECT_TRUE(first.ok);
    EXPECT_EQ(first.raw, repeat.raw);

    const serve::ServerStatsSnapshot stats = server.stats();
    EXPECT_GE(stats.cache.hits, 1u);
    EXPECT_GE(stats.cache.insertions, 1u);
    server.stop();
}

// The headline determinism gate at test scale: 16 concurrent clients
// against a 4-thread server, every reply byte-compared against a fresh
// single-threaded server answering the same payloads serially.
TEST(ServeServer, SixteenClientRepliesMatchSingleThreadedServer)
{
    static const char* const kModels[] = {"kws", "har", "simple_conv"};
    static const char* const kTypes[] = {"eval_design_point",
                                         "eval_mapping"};
    const std::size_t per_client = 4;
    const std::size_t n_clients = 16;
    const std::size_t total = n_clients * per_client;

    // Deterministic payload table; request i carries id i+1.
    std::vector<std::string> payloads;
    serve::Client builder;  // unconnected: only build_request is used
    for (std::size_t i = 0; i < total; ++i) {
        FlatJsonFields params;
        params["model"] = kModels[i % 3];
        params["solar_cm2"] = std::to_string(4 + (i % 5));
        builder.set_next_id(i + 1);
        payloads.push_back(builder.build_request(
            kTypes[i % 2], params));
    }

    serve::Server loaded(loopback_options(4));
    loaded.start();
    std::vector<std::string> concurrent(total);
    std::atomic<int> failures{0};
    runtime::ThreadPool clients(static_cast<int>(n_clients));
    clients.parallel_for(n_clients, [&](std::size_t c) {
        serve::Client client;
        if (!client.connect("127.0.0.1", loaded.port(), 60.0)) {
            failures.fetch_add(1);
            return;
        }
        for (std::size_t k = 0; k < per_client; ++k) {
            const std::size_t i = c * per_client + k;
            if (!client.send_frame(payloads[i]) ||
                !client.recv_frame(concurrent[i]))
                failures.fetch_add(1);
        }
    });
    loaded.stop();
    ASSERT_EQ(failures.load(), 0);

    serve::Server reference(loopback_options(1));
    reference.start();
    serve::Client serial = connect_to(reference);
    for (std::size_t i = 0; i < total; ++i) {
        std::string reply;
        ASSERT_TRUE(serial.send_frame(payloads[i]));
        ASSERT_TRUE(serial.recv_frame(reply));
        EXPECT_EQ(concurrent[i], reply) << "request " << i << ": "
                                        << payloads[i];
    }
    reference.stop();
}

}  // namespace

/// \file
/// Resilient-client tests against deliberately hostile servers: the
/// whole-frame wall-clock deadline (a trickling server cannot wedge a
/// request), clean errors for replies truncated at every byte offset,
/// reassembly of replies split at every byte offset, transport-failure
/// retries, the idempotence restriction and the circuit breaker.

#include "serve/client.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace chrysalis;

void
brief_pause(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Minimal scripted TCP server: binds an ephemeral loopback port and
/// hands each accepted connection to the behavior callback on a
/// background thread until stopped.
class ScriptedServer
{
  public:
    explicit ScriptedServer(std::function<void(int fd, int index)> behave)
        : behave_(std::move(behave))
    {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(listen_fd_, 0);
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::bind(listen_fd_,
                         reinterpret_cast<const sockaddr*>(&address),
                         sizeof address),
                  0);
        EXPECT_EQ(::listen(listen_fd_, 16), 0);
        socklen_t length = sizeof address;
        EXPECT_EQ(::getsockname(listen_fd_,
                                reinterpret_cast<sockaddr*>(&address),
                                &length),
                  0);
        port_ = static_cast<int>(ntohs(address.sin_port));
        // The thread keeps its own copy of the listener fd: stop()
        // writes listen_fd_ from the main thread, and shutdown() is
        // what actually unblocks accept().
        thread_ = std::thread([this, accept_fd = listen_fd_] {
            int index = 0;
            while (true) {
                const int fd = ::accept(accept_fd, nullptr, nullptr);
                if (fd < 0)
                    return;  // listener closed: shut down
                behave_(fd, index++);
                ::close(fd);
            }
        });
    }

    ~ScriptedServer()
    {
        stop();
    }

    /// Stops accepting; connections to port() are refused afterwards.
    void
    stop()
    {
        if (listen_fd_ >= 0) {
            ::shutdown(listen_fd_, SHUT_RDWR);
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        if (thread_.joinable())
            thread_.join();
    }

    int
    port() const
    {
        return port_;
    }

  private:
    std::function<void(int fd, int index)> behave_;
    int listen_fd_ = -1;
    int port_ = 0;
    std::thread thread_;
};

/// Reads until at least one byte arrived (the request is in flight).
void
swallow_request(int fd)
{
    char buffer[4096];
    (void)!::recv(fd, buffer, sizeof buffer, 0);
}

/// A canned well-formed reply for request id 1.
std::string
canned_reply_frame()
{
    return serve::encode_frame("{\"v\":1,\"id\":1,\"ok\":1}");
}

TEST(ServeClient, TrickleServerCannotOutliveTheFrameDeadline)
{
    // One byte every 30 ms resets a per-recv() timer forever; the
    // whole-frame deadline must cut the request off regardless.
    std::atomic<bool> cancelled{false};
    ScriptedServer server([&](int fd, int) {
        swallow_request(fd);
        const std::string frame = canned_reply_frame();
        for (char byte : frame) {
            if (cancelled.load())
                return;
            if (::send(fd, &byte, 1, MSG_NOSIGNAL) != 1)
                return;
            brief_pause(30);
        }
    });

    serve::ClientOptions options;
    options.request_timeout_s = 0.25;
    serve::Client client(options);
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(client.send_frame("{\"v\":1,\"id\":1,"
                                  "\"type\":\"server_stats\"}"));
    const double start_s = obs::monotonic_seconds();
    std::string payload;
    EXPECT_FALSE(client.recv_frame(payload));
    const double elapsed_s = obs::monotonic_seconds() - start_s;
    EXPECT_LT(elapsed_s, 2.0);  // deadline, not one-timeout-per-byte
    cancelled.store(true);
    client.close();
}

TEST(ServeClient, ReplyTruncatedAtEveryOffsetFailsCleanly)
{
    // A server killed mid-write can cut the reply at any byte. Every
    // prefix must produce a clean failure — never a hang or a frame
    // assembled from garbage.
    const std::string frame = canned_reply_frame();
    std::atomic<std::size_t> cut{0};
    ScriptedServer server([&](int fd, int) {
        swallow_request(fd);
        const std::size_t n = cut.load();
        if (n > 0)
            (void)!::send(fd, frame.data(), n, MSG_NOSIGNAL);
        // returning closes fd: the client sees EOF after the prefix
    });

    for (std::size_t offset = 0; offset < frame.size(); ++offset) {
        cut.store(offset);
        serve::ClientOptions options;
        options.request_timeout_s = 5.0;
        serve::Client client(options);
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()))
            << "offset " << offset;
        ASSERT_TRUE(client.send_frame("{\"v\":1,\"id\":1,"
                                      "\"type\":\"server_stats\"}"));
        std::string payload;
        EXPECT_FALSE(client.recv_frame(payload)) << "offset " << offset;
        client.close();
    }
}

TEST(ServeClient, ReplySplitAtEveryOffsetReassembles)
{
    // The same frame delivered in two segments with a pause in between
    // must always reassemble — at every split point, including inside
    // the 4-byte length prefix.
    const std::string frame = canned_reply_frame();
    std::atomic<std::size_t> cut{0};
    ScriptedServer server([&](int fd, int) {
        swallow_request(fd);
        const std::size_t n = cut.load();
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (n > 0) {
            ASSERT_EQ(::send(fd, frame.data(), n, MSG_NOSIGNAL),
                      static_cast<ssize_t>(n));
        }
        brief_pause(5);
        ASSERT_EQ(::send(fd, frame.data() + n, frame.size() - n,
                         MSG_NOSIGNAL),
                  static_cast<ssize_t>(frame.size() - n));
    });

    for (std::size_t offset = 0; offset < frame.size(); ++offset) {
        cut.store(offset);
        serve::ClientOptions options;
        options.request_timeout_s = 5.0;
        serve::Client client(options);
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()))
            << "offset " << offset;
        ASSERT_TRUE(client.send_frame("{\"v\":1,\"id\":1,"
                                      "\"type\":\"server_stats\"}"));
        std::string payload;
        ASSERT_TRUE(client.recv_frame(payload)) << "offset " << offset;
        EXPECT_EQ(payload, "{\"v\":1,\"id\":1,\"ok\":1}");
        client.close();
    }
}

TEST(ServeClient, RequestRetriesThroughDroppedConnections)
{
    // The first two connections die without a reply; the third answers.
    // The resilient path must deliver the reply on attempt 3.
    ScriptedServer server([&](int fd, int index) {
        if (index < 2) {
            swallow_request(fd);
            return;  // close without replying
        }
        swallow_request(fd);
        const std::string frame = canned_reply_frame();
        (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    });

    serve::ClientOptions options;
    options.max_attempts = 5;
    options.backoff_base_s = 0.001;
    options.backoff_max_s = 0.01;
    options.request_timeout_s = 5.0;
    serve::Client client(options);
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    serve::Response response;
    EXPECT_EQ(client.request("eval_design_point", {}, response),
              serve::CallStatus::kOk);
    EXPECT_TRUE(response.ok);
    EXPECT_EQ(response.id, 1u);
    EXPECT_EQ(client.retry_stats().attempts, 3u);
    EXPECT_EQ(client.retry_stats().retries, 2u);
    EXPECT_GE(client.retry_stats().reconnects, 2u);
}

TEST(ServeClient, NonMemoizedTypesAreNeverRetried)
{
    // server_stats is live state, not memoized: a lost reply must not
    // be resent however many attempts the options allow.
    ScriptedServer server([](int fd, int) { swallow_request(fd); });

    serve::ClientOptions options;
    options.max_attempts = 5;
    options.backoff_base_s = 0.001;
    options.request_timeout_s = 2.0;
    serve::Client client(options);
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    serve::Response response;
    EXPECT_EQ(client.request("server_stats", {}, response),
              serve::CallStatus::kTransportError);
    EXPECT_EQ(client.retry_stats().attempts, 1u);
    EXPECT_EQ(client.retry_stats().retries, 0u);
}

TEST(ServeClient, CircuitBreakerOpensFastFailsAndRecovers)
{
    // Reserve a port, then close the listener so connections to it are
    // refused.
    int dead_port = 0;
    {
        ScriptedServer placeholder([](int, int) {});
        dead_port = placeholder.port();
    }

    serve::ClientOptions options;
    options.connect_timeout_s = 1.0;
    options.request_timeout_s = 1.0;
    options.max_attempts = 1;
    options.circuit_breaker_threshold = 2;
    options.circuit_breaker_cooldown_s = 0.1;
    serve::Client client(options);
    EXPECT_FALSE(client.connect("127.0.0.1", dead_port));

    serve::Response response;
    EXPECT_EQ(client.request("eval_design_point", {}, response),
              serve::CallStatus::kTransportError);
    EXPECT_FALSE(client.circuit_open());
    EXPECT_EQ(client.request("eval_design_point", {}, response),
              serve::CallStatus::kTransportError);
    EXPECT_TRUE(client.circuit_open());
    EXPECT_EQ(client.retry_stats().circuit_opens, 1u);

    // While open: fast-fail without touching the network.
    const std::uint64_t attempts_before = client.retry_stats().attempts;
    EXPECT_EQ(client.request("eval_design_point", {}, response),
              serve::CallStatus::kCircuitOpen);
    EXPECT_EQ(client.retry_stats().attempts, attempts_before);
    EXPECT_EQ(client.retry_stats().circuit_open_rejections, 1u);

    // A healthy server appears; after the cooldown the half-open probe
    // must close the breaker again.
    serve::ServerOptions server_options;
    server_options.host = "127.0.0.1";
    server_options.threads = 1;
    serve::Server server(server_options);
    server.start();
    EXPECT_TRUE(client.connect("127.0.0.1", server.port()));
    brief_pause(150);  // let the cooldown elapse
    EXPECT_EQ(client.request("eval_design_point",
                             {{"model", "kws"}}, response),
              serve::CallStatus::kOk);
    EXPECT_TRUE(response.ok);
    EXPECT_FALSE(client.circuit_open());
    server.stop();
}

TEST(ServeClient, ConnectToRefusedPortFailsFast)
{
    int dead_port = 0;
    {
        ScriptedServer placeholder([](int, int) {});
        dead_port = placeholder.port();
    }
    serve::ClientOptions options;
    options.connect_timeout_s = 5.0;
    serve::Client client(options);
    const double start_s = obs::monotonic_seconds();
    EXPECT_FALSE(client.connect("127.0.0.1", dead_port));
    EXPECT_LT(obs::monotonic_seconds() - start_s, 2.0);
}

}  // namespace

// Wire-format and handler tests for chrysalis-serve-v1: frame
// encode/decode round-trips, truncated and oversized frames, and the
// pure request handlers — including the determinism and cache-key
// contracts the server's byte-identical-replies guarantee rests on.

#include "serve/handlers.hpp"
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/flat_json.hpp"

namespace {

using namespace chrysalis;
using serve::FrameDecoder;

std::string prefix_bytes(std::size_t length)
{
    std::string out(serve::kLengthPrefixBytes, '\0');
    out[0] = static_cast<char>((length >> 24) & 0xff);
    out[1] = static_cast<char>((length >> 16) & 0xff);
    out[2] = static_cast<char>((length >> 8) & 0xff);
    out[3] = static_cast<char>(length & 0xff);
    return out;
}

FlatJsonFields base_request(const std::string& type)
{
    FlatJsonFields fields;
    fields["v"] = serve::kProtocolVersion;
    fields["id"] = "7";
    fields["type"] = type;
    return fields;
}

TEST(FrameDecoder, RoundTripsOnePayload)
{
    const std::string payload = "{\"v\":\"x\",\"id\":1}";
    const std::string frame = serve::encode_frame(payload);
    ASSERT_EQ(frame.size(), serve::kLengthPrefixBytes + payload.size());

    FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    std::string out;
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kNeedMore);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoder, RoundTripsEmptyPayload)
{
    const std::string frame = serve::encode_frame("");
    FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    std::string out = "sentinel";
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
    EXPECT_TRUE(out.empty());
}

TEST(FrameDecoder, TruncatedFrameWaitsByteByByte)
{
    const std::string frame = serve::encode_frame("{\"id\":2}");
    FrameDecoder decoder;
    std::string out;
    // Every prefix of the frame (including a torn length prefix) must
    // report kNeedMore; only the full frame yields the payload.
    for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
        decoder.feed(frame.data() + i, 1);
        EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kNeedMore)
            << "after byte " << i;
    }
    decoder.feed(frame.data() + frame.size() - 1, 1);
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
    EXPECT_EQ(out, "{\"id\":2}");
}

TEST(FrameDecoder, ExtractsBackToBackFrames)
{
    const std::string both =
        serve::encode_frame("first") + serve::encode_frame("second");
    FrameDecoder decoder;
    decoder.feed(both.data(), both.size());
    std::string out;
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
    EXPECT_EQ(out, "first");
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
    EXPECT_EQ(out, "second");
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kNeedMore);
}

TEST(FrameDecoder, OversizedLengthIsSticky)
{
    const std::size_t huge = serve::kMaxFrameBytes + 1;
    const std::string prefix = prefix_bytes(huge);
    FrameDecoder decoder;
    decoder.feed(prefix.data(), prefix.size());
    std::string out;
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kOversized);
    EXPECT_EQ(decoder.oversized_length(), huge);
    // The stream cannot be resynchronized: even well-formed bytes fed
    // afterwards keep reporting kOversized.
    const std::string frame = serve::encode_frame("{}");
    decoder.feed(frame.data(), frame.size());
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kOversized);
}

TEST(FrameDecoder, MaxLengthFrameIsAccepted)
{
    const std::string payload(serve::kMaxFrameBytes, 'x');
    const std::string frame = serve::encode_frame(payload);
    FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    std::string out;
    EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
    EXPECT_EQ(out.size(), serve::kMaxFrameBytes);
}

TEST(Handlers, RequestIdParsesAndDefaultsToZero)
{
    FlatJsonFields fields;
    EXPECT_EQ(serve::request_id(fields), 0u);
    fields["id"] = "42";
    EXPECT_EQ(serve::request_id(fields), 42u);
    fields["id"] = "not-a-number";
    EXPECT_EQ(serve::request_id(fields), 0u);
}

TEST(Handlers, ErrorResponseShape)
{
    const std::string reply =
        serve::error_response(9, serve::kErrOverloaded, "queue full");
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(reply, fields));
    EXPECT_EQ(fields.at("v"), serve::kProtocolVersion);
    EXPECT_EQ(fields.at("id"), "9");
    EXPECT_EQ(fields.at("ok"), "0");
    EXPECT_EQ(fields.at("error"), serve::kErrOverloaded);
    EXPECT_EQ(fields.at("detail"), "queue full");
}

TEST(Handlers, MissingOrWrongVersionIsRejected)
{
    serve::ServerStatsSnapshot stats;
    FlatJsonFields fields;
    fields["type"] = "server_stats";
    std::string body = serve::handle_request_body(fields, nullptr, stats);
    EXPECT_NE(body.find(serve::kErrBadVersion), std::string::npos) << body;

    fields["v"] = "chrysalis-serve-v999";
    body = serve::handle_request_body(fields, nullptr, stats);
    EXPECT_NE(body.find(serve::kErrBadVersion), std::string::npos) << body;
}

TEST(Handlers, MissingTypeIsBadRequest)
{
    serve::ServerStatsSnapshot stats;
    FlatJsonFields fields;
    fields["v"] = serve::kProtocolVersion;
    const std::string body =
        serve::handle_request_body(fields, nullptr, stats);
    EXPECT_NE(body.find(serve::kErrBadRequest), std::string::npos) << body;
}

TEST(Handlers, UnknownTypeIsReported)
{
    serve::ServerStatsSnapshot stats;
    const std::string body = serve::handle_request_body(
        base_request("make_coffee"), nullptr, stats);
    EXPECT_NE(body.find(serve::kErrUnknownType), std::string::npos) << body;
}

TEST(Handlers, HandlerFatalBecomesStructuredError)
{
    serve::ServerStatsSnapshot stats;
    FlatJsonFields fields = base_request("eval_design_point");
    fields["model"] = "no_such_model";
    const std::string body =
        serve::handle_request_body(fields, nullptr, stats);
    EXPECT_NE(body.find("\"ok\":0"), std::string::npos) << body;
    EXPECT_NE(body.find(serve::kErrBadRequest), std::string::npos) << body;
}

TEST(Handlers, EvalDesignPointBodyIsDeterministic)
{
    serve::ServerStatsSnapshot stats;
    FlatJsonFields fields = base_request("eval_design_point");
    fields["model"] = "kws";
    fields["solar_cm2"] = "8";
    const std::string first =
        serve::handle_request_body(fields, nullptr, stats);
    const std::string second =
        serve::handle_request_body(fields, nullptr, stats);
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"ok\":1"), std::string::npos) << first;
    EXPECT_NE(first.find("\"feasible\":"), std::string::npos) << first;
}

TEST(Handlers, CacheKeyIgnoresIdButNotParameters)
{
    FlatJsonFields a = base_request("eval_design_point");
    a["model"] = "kws";
    FlatJsonFields b = a;
    b["id"] = "99";  // different echo token, same logical request
    EXPECT_EQ(serve::request_cache_key(a), serve::request_cache_key(b));

    FlatJsonFields c = a;
    c["model"] = "har";
    EXPECT_NE(serve::request_cache_key(a), serve::request_cache_key(c));
}

TEST(Handlers, ResponseCacheServesRepeatsWithoutRecompute)
{
    serve::ServerStatsSnapshot stats;
    serve::ResponseCache cache(64);
    FlatJsonFields first = base_request("eval_design_point");
    first["model"] = "kws";
    FlatJsonFields repeat = first;
    repeat["id"] = "8";

    const std::string body1 =
        serve::handle_request_body(first, &cache, stats);
    const std::string body2 =
        serve::handle_request_body(repeat, &cache, stats);
    EXPECT_EQ(body1, body2);
    const runtime::EvalCacheStats cache_stats = cache.stats();
    EXPECT_EQ(cache_stats.hits, 1u);
    EXPECT_EQ(cache_stats.misses, 1u);
    EXPECT_EQ(cache_stats.insertions, 1u);
}

TEST(Handlers, ServerStatsIsNeverCached)
{
    serve::ServerStatsSnapshot stats;
    stats.requests_total = 5;
    serve::ResponseCache cache(64);
    const std::string body = serve::handle_request_body(
        base_request("server_stats"), &cache, stats);
    EXPECT_NE(body.find("\"requests_total\":5"), std::string::npos) << body;
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(Handlers, FinishResponseWrapsBody)
{
    const std::string reply = serve::finish_response(3, "\"ok\":1,\"x\":2");
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(reply, fields));
    EXPECT_EQ(fields.at("v"), serve::kProtocolVersion);
    EXPECT_EQ(fields.at("id"), "3");
    EXPECT_EQ(fields.at("ok"), "1");
    EXPECT_EQ(fields.at("x"), "2");
}

}  // namespace

// Fleet telemetry handler tests: memo-exemption of the `trace` field
// (tracing is observability, never semantics), timing splices staying
// out of cached bytes, and the bounded cursor-resumable
// `metrics_snapshot` / `trace_export` pull handlers.

#include "serve/handlers.hpp"
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_json.hpp"
#include "obs/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace chrysalis;

FlatJsonFields base_request(const std::string& type)
{
    FlatJsonFields fields;
    fields["v"] = serve::kProtocolVersion;
    fields["id"] = "7";
    fields["type"] = type;
    return fields;
}

std::uint64_t field_u64(const FlatJsonFields& fields, const char* name)
{
    const auto it = fields.find(name);
    EXPECT_NE(it, fields.end()) << "missing field " << name;
    if (it == fields.end())
        return 0;
    return static_cast<std::uint64_t>(std::stoull(it->second));
}

TEST(TraceField, RoundTripsAndRejectsMalformed)
{
    obs::TraceContext context;
    context.trace_id = 0xabcdef12u;
    context.parent_span = 42;
    context.sampled = true;
    obs::TraceContext out;
    ASSERT_TRUE(
        obs::parse_trace_field(obs::format_trace_field(context), out));
    EXPECT_EQ(out.trace_id, context.trace_id);
    EXPECT_EQ(out.parent_span, context.parent_span);
    EXPECT_TRUE(out.sampled);

    context.sampled = false;
    ASSERT_TRUE(
        obs::parse_trace_field(obs::format_trace_field(context), out));
    EXPECT_FALSE(out.sampled);

    out.trace_id = 99;
    EXPECT_FALSE(obs::parse_trace_field("", out));
    EXPECT_FALSE(obs::parse_trace_field("not-a-trace", out));
    EXPECT_FALSE(obs::parse_trace_field("zz-00-01", out));
    EXPECT_EQ(out.trace_id, 99u);  // untouched on failure
}

TEST(Handlers, CacheKeyIgnoresTraceContext)
{
    FlatJsonFields untraced = base_request("eval_design_point");
    untraced["model"] = "kws";

    obs::TraceContext context;
    context.trace_id = 0x1234;
    context.parent_span = 5;
    FlatJsonFields traced = untraced;
    traced["trace"] = obs::format_trace_field(context);
    traced["id"] = "99";

    // Tracing is observability, never semantics: a traced and an
    // untraced spelling of the same request share one memo entry.
    EXPECT_EQ(serve::request_cache_key(untraced),
              serve::request_cache_key(traced));

    FlatJsonFields different = untraced;
    different["model"] = "har";
    EXPECT_NE(serve::request_cache_key(untraced),
              serve::request_cache_key(different));

    // "case_index" is attribution data, not trace plumbing, and stays
    // in the key deliberately — only "id" and "trace" are exempt.
    FlatJsonFields attributed = untraced;
    attributed["case_index"] = "0";
    EXPECT_NE(serve::request_cache_key(untraced),
              serve::request_cache_key(attributed));
}

TEST(Handlers, TracedRequestHitsUntracedMemoEntry)
{
    serve::ServerStatsSnapshot stats;
    serve::ResponseCache cache(64);
    FlatJsonFields untraced = base_request("eval_design_point");
    untraced["model"] = "kws";

    const std::string body1 =
        serve::handle_request_body(untraced, &cache, stats);

    obs::TraceContext context;
    context.trace_id = 7;
    FlatJsonFields traced = untraced;
    traced["trace"] = obs::format_trace_field(context);
    const std::string body2 =
        serve::handle_request_body(traced, &cache, stats);

    EXPECT_EQ(body1, body2);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
    // Timing is spliced by the server AFTER memo lookup; handler-level
    // bodies (the bytes that get cached) must never carry it.
    EXPECT_EQ(body1.find("timing_"), std::string::npos) << body1;
    EXPECT_EQ(body2.find("timing_"), std::string::npos) << body2;
}

TEST(Handlers, AppendTimingFieldsSplicesBeforeClosingBrace)
{
    std::string response = "{\"v\":\"x\",\"id\":1,\"ok\":1}";
    serve::append_timing_fields(response, 0.5, 0.25, 2.0, 0.125);
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json(response, fields));
    EXPECT_EQ(fields.at("ok"), "1");
    EXPECT_EQ(fields.at("timing_queue_s"), "0.5");
    EXPECT_EQ(fields.at("timing_decode_s"), "0.25");
    EXPECT_EQ(fields.at("timing_eval_s"), "2");
    EXPECT_EQ(fields.at("timing_encode_s"), "0.125");
}

TEST(Handlers, HealthReportsMonotonicNow)
{
    serve::ServerStatsSnapshot stats;
    stats.worker_id = "w1";
    const std::string body = serve::handle_request_body(
        base_request("health"), nullptr, stats);
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json("{" + body + "}", fields));
    EXPECT_EQ(fields.at("worker_id"), "w1");
    EXPECT_NE(fields.find("mono_now_s"), fields.end()) << body;
}

TEST(Handlers, ServerStatsReportsLatencyQuantiles)
{
    serve::ServerStatsSnapshot stats;
    stats.latency_count = 1000;
    stats.latency_p50_s = 0.5;
    stats.latency_p95_s = 2.0;
    stats.latency_p99_s = 4.0;
    const std::string body = serve::handle_request_body(
        base_request("server_stats"), nullptr, stats);
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json("{" + body + "}", fields));
    EXPECT_EQ(fields.at("latency_count"), "1000");
    EXPECT_EQ(fields.at("latency_p50_s"), "0.5");
    EXPECT_EQ(fields.at("latency_p95_s"), "2");
    EXPECT_EQ(fields.at("latency_p99_s"), "4");
}

TEST(Handlers, PullTypesAreNeverMemoized)
{
    EXPECT_FALSE(serve::response_is_memoized("metrics_snapshot"));
    EXPECT_FALSE(serve::response_is_memoized("trace_export"));

    // And they bypass the cache entirely: live state must be re-read
    // on every pull.
    serve::ServerStatsSnapshot stats;
    serve::ResponseCache cache(64);
    serve::handle_request_body(base_request("metrics_snapshot"), &cache,
                               stats);
    serve::handle_request_body(base_request("trace_export"), &cache,
                               stats);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(Handlers, MetricsSnapshotWithoutSourceReportsDetached)
{
    serve::ServerStatsSnapshot stats;
    const std::string body = serve::handle_request_body(
        base_request("metrics_snapshot"), nullptr, stats);
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json("{" + body + "}", fields));
    EXPECT_EQ(fields.at("ok"), "1");
    EXPECT_EQ(fields.at("attached"), "0");
    EXPECT_EQ(fields.at("total"), "0");
    EXPECT_EQ(fields.at("remaining"), "0");
    EXPECT_EQ(fields.at("entries"), "0");
}

TEST(Handlers, MetricsSnapshotPagesUntilDrained)
{
    obs::MetricsRegistry registry;
    registry.counter("alpha").add(3);
    registry.counter("beta").add(5);
    registry.gauge("gamma").set(1.5);
    registry.histogram("delta", {1.0, 2.0}).record(0.5);
    registry.counter("epsilon").add(1);

    serve::ServerStatsSnapshot stats;
    serve::TelemetrySources telemetry;
    telemetry.metrics = &registry;

    const std::vector<obs::MetricSample> expected = registry.samples();
    std::vector<obs::MetricSample> pulled;
    std::uint64_t cursor = 0;
    int pages = 0;
    while (true) {
        FlatJsonFields request = base_request("metrics_snapshot");
        request["cursor"] = std::to_string(cursor);
        request["max_entries"] = "2";
        const std::string body = serve::handle_request_body(
            request, nullptr, stats, telemetry);
        FlatJsonFields fields;
        ASSERT_TRUE(scan_flat_json("{" + body + "}", fields));
        ASSERT_EQ(fields.at("attached"), "1");
        ASSERT_EQ(field_u64(fields, "total"), expected.size());
        const std::uint64_t entries = field_u64(fields, "entries");
        ASSERT_LE(entries, 2u);
        for (std::uint64_t i = 0; i < entries; ++i) {
            obs::MetricSample sample;
            ASSERT_TRUE(obs::decode_metric_sample(
                fields.at("m" + std::to_string(i)), sample));
            pulled.push_back(std::move(sample));
        }
        cursor = field_u64(fields, "cursor_next");
        ++pages;
        if (field_u64(fields, "remaining") == 0)
            break;
        ASSERT_LT(pages, 16) << "cursor failed to make progress";
    }
    EXPECT_EQ(pages, 3);  // 5 samples at 2 per page
    ASSERT_EQ(pulled.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(pulled[i].name, expected[i].name) << i;
        EXPECT_EQ(pulled[i].kind, expected[i].kind) << i;
        EXPECT_EQ(pulled[i].count, expected[i].count) << i;
        EXPECT_EQ(pulled[i].value, expected[i].value) << i;
    }
}

TEST(Handlers, TraceExportWithoutSourceReportsDetached)
{
    serve::ServerStatsSnapshot stats;
    const std::string body = serve::handle_request_body(
        base_request("trace_export"), nullptr, stats);
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json("{" + body + "}", fields));
    EXPECT_EQ(fields.at("ok"), "1");
    EXPECT_EQ(fields.at("attached"), "0");
    EXPECT_EQ(fields.at("events"), "0");
    EXPECT_EQ(fields.at("remaining"), "0");
}

TEST(Handlers, TraceExportCursorResumesWithoutDuplicates)
{
    obs::TraceSession session;
    constexpr int kEvents = 10;
    for (int i = 0; i < kEvents; ++i) {
        obs::TraceEvent event;
        event.name = "span" + std::to_string(i);
        event.start_us = 100.0 * i;  // NOLINT(chrysalis-unit-suffix)
        event.duration_us = 10.0;    // NOLINT(chrysalis-unit-suffix)
        session.add_event(std::move(event));
    }

    serve::ServerStatsSnapshot stats;
    serve::TelemetrySources telemetry;
    telemetry.trace = &session;

    std::vector<obs::TraceEvent> pulled;
    std::uint64_t cursor = 0;
    int pages = 0;
    while (true) {
        FlatJsonFields request = base_request("trace_export");
        request["cursor"] = std::to_string(cursor);
        request["max_events"] = "3";
        const std::string body = serve::handle_request_body(
            request, nullptr, stats, telemetry);
        FlatJsonFields fields;
        ASSERT_TRUE(scan_flat_json("{" + body + "}", fields));
        ASSERT_EQ(fields.at("attached"), "1");
        ASSERT_EQ(field_u64(fields, "total"),
                  static_cast<std::uint64_t>(kEvents));
        ASSERT_EQ(field_u64(fields, "dropped"), 0u);
        ASSERT_NE(fields.find("mono_skew_s"), fields.end());
        const std::uint64_t events = field_u64(fields, "events");
        ASSERT_LE(events, 3u);
        for (std::uint64_t i = 0; i < events; ++i) {
            obs::TraceEvent event;
            ASSERT_TRUE(obs::decode_trace_event(
                fields.at("e" + std::to_string(i)), event));
            pulled.push_back(std::move(event));
        }
        cursor = field_u64(fields, "cursor_next");
        ++pages;
        if (field_u64(fields, "remaining") == 0)
            break;
        ASSERT_LT(pages, 16) << "cursor failed to make progress";
    }
    EXPECT_EQ(pages, 4);  // 10 events at 3 per page
    ASSERT_EQ(pulled.size(), static_cast<std::size_t>(kEvents));
    // Append order within the thread, no duplicates, no gaps.
    for (int i = 0; i < kEvents; ++i)
        EXPECT_EQ(pulled[static_cast<std::size_t>(i)].name,
                  "span" + std::to_string(i));
}

TEST(Handlers, TraceExportClampsPageSize)
{
    obs::TraceSession session;
    obs::TraceEvent event;
    event.name = "only";
    session.add_event(std::move(event));

    serve::ServerStatsSnapshot stats;
    serve::TelemetrySources telemetry;
    telemetry.trace = &session;

    // max_events=0 would never make progress; the handler raises it to
    // one so every page moves the cursor.
    FlatJsonFields request = base_request("trace_export");
    request["max_events"] = "0";
    const std::string body =
        serve::handle_request_body(request, nullptr, stats, telemetry);
    FlatJsonFields fields;
    ASSERT_TRUE(scan_flat_json("{" + body + "}", fields));
    EXPECT_EQ(field_u64(fields, "events"), 1u);
    EXPECT_EQ(field_u64(fields, "remaining"), 0u);
}

}  // namespace

// The run_case request type — the distributed coordinator's unit of
// work — plus the worker-identity fields that ride along in this PR:
// the reply must equal the local run_campaign_case result with wall
// times stripped (the byte-identity building block), run_case must be
// memoized (hence client-retryable), and health/server_stats must
// report worker_id and uptime_seconds.

#include "serve/handlers.hpp"
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/flat_json.hpp"
#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "core/campaign_spec.hpp"
#include "dnn/model_zoo.hpp"
#include "fault/fault_injector.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace chrysalis;

serve::ServerOptions loopback_options(int threads)
{
    serve::ServerOptions options;
    options.host = "127.0.0.1";
    options.port = 0;
    options.threads = threads;
    return options;
}

serve::Client connect_to(const serve::Server& server)
{
    serve::Client client;
    EXPECT_TRUE(client.connect("127.0.0.1", server.port(), 120.0));
    return client;
}

core::CampaignSpec small_spec()
{
    core::CampaignSpec spec;
    spec.cases = 3;
    spec.population = 4;
    spec.generations = 2;
    spec.seed = 5;
    return spec;
}

TEST(ServeRunCase, ReplyMatchesLocalRunCampaignCase)
{
    const core::CampaignSpec spec = small_spec();
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client = connect_to(server);

    for (std::size_t index = 0; index < 3; ++index) {
        serve::Response response;
        ASSERT_TRUE(client.call(
            "run_case", core::case_request_fields(spec, index),
            response));
        ASSERT_TRUE(response.ok) << response.raw;
        core::JournalRecord remote;
        ASSERT_TRUE(core::campaign_record_from_fields(response.fields,
                                                      remote))
            << response.raw;

        const dnn::Model model = dnn::make_model(spec.model);
        const core::CampaignCase campaign_case =
            core::build_campaign_case(spec, model, index);
        std::unique_ptr<fault::FaultInjector> faults;
        const search::ExplorerOptions options =
            core::build_explorer_options(spec, faults);
        const core::JournalRecord local = core::deterministic_record(
            core::to_journal_record(
                core::run_campaign_case(campaign_case, options, index,
                                        spec.max_attempts),
                ""));

        // Same serialized record — label, metrics, %.17g doubles, all
        // of it. This equality is the distributed byte-identity
        // guarantee at the granularity of one case.
        EXPECT_EQ(core::to_json_line(remote),
                  core::to_json_line(local));
        EXPECT_EQ(remote.label,
                  core::campaign_case_label("kws", index));
    }
    server.stop();
}

TEST(ServeRunCase, IsMemoizedAndRepeatRequestsHitTheCache)
{
    EXPECT_TRUE(serve::response_is_memoized("run_case"));
    EXPECT_FALSE(serve::response_is_memoized("server_stats"));

    const core::CampaignSpec spec = small_spec();
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client = connect_to(server);

    serve::Response first;
    ASSERT_TRUE(client.call("run_case",
                            core::case_request_fields(spec, 0), first));
    ASSERT_TRUE(first.ok) << first.raw;
    serve::Response second;
    ASSERT_TRUE(client.call("run_case",
                            core::case_request_fields(spec, 0), second));
    ASSERT_TRUE(second.ok) << second.raw;

    serve::Response stats;
    ASSERT_TRUE(client.call("server_stats", {}, stats));
    std::uint64_t hits = 0;
    std::uint64_t run_case_requests = 0;
    EXPECT_TRUE(json_get_uint64(stats.fields, "cache_hits", hits));
    EXPECT_TRUE(json_get_uint64(stats.fields, "requests_run_case",
                                run_case_requests));
    EXPECT_GE(hits, 1u);
    EXPECT_EQ(run_case_requests, 2u);
    server.stop();
}

TEST(ServeRunCase, BadSpecsAreRefusedNotFatal)
{
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client = connect_to(server);

    // Unknown model: the handler's fatal() surfaces as bad_request.
    const core::CampaignSpec spec = small_spec();
    FlatJsonFields fields = core::case_request_fields(spec, 0);
    fields["model"] = "no_such_model";
    serve::Response response;
    ASSERT_TRUE(client.call("run_case", fields, response));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, serve::kErrBadRequest) << response.raw;

    // Missing case_index.
    ASSERT_TRUE(client.call("run_case", core::to_fields(spec), response));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, serve::kErrBadRequest) << response.raw;

    // case_index out of range.
    fields = core::case_request_fields(spec, 0);
    fields["case_index"] = "99";
    ASSERT_TRUE(client.call("run_case", fields, response));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, serve::kErrBadRequest) << response.raw;

    // The server is still alive and answering.
    ASSERT_TRUE(client.call("health", {}, response));
    EXPECT_TRUE(response.ok);
    server.stop();
}

TEST(ServeRunCase, HealthAndStatsReportWorkerIdentity)
{
    serve::ServerOptions options = loopback_options(1);
    options.worker_id = "test-worker-7";
    serve::Server server(options);
    server.start();
    serve::Client client = connect_to(server);

    serve::Response health;
    ASSERT_TRUE(client.call("health", {}, health));
    ASSERT_TRUE(health.ok) << health.raw;
    std::string worker_id;
    EXPECT_TRUE(json_get_string(health.fields, "worker_id", worker_id));
    EXPECT_EQ(worker_id, "test-worker-7");

    serve::Response stats;
    ASSERT_TRUE(client.call("server_stats", {}, stats));
    ASSERT_TRUE(stats.ok) << stats.raw;
    worker_id.clear();
    EXPECT_TRUE(json_get_string(stats.fields, "worker_id", worker_id));
    EXPECT_EQ(worker_id, "test-worker-7");
    double uptime = -1.0;
    EXPECT_TRUE(json_get_double(stats.fields, "uptime_seconds", uptime));
    EXPECT_GE(uptime, 0.0);
    server.stop();
}

TEST(ServeRunCase, DefaultWorkerIdIsHostnameAndPort)
{
    serve::Server server(loopback_options(1));
    server.start();
    serve::Client client = connect_to(server);
    serve::Response health;
    ASSERT_TRUE(client.call("health", {}, health));
    std::string worker_id;
    ASSERT_TRUE(json_get_string(health.fields, "worker_id", worker_id));
    const std::string port_suffix =
        ":" + std::to_string(server.port());
    ASSERT_GE(worker_id.size(), port_suffix.size());
    EXPECT_EQ(worker_id.substr(worker_id.size() - port_suffix.size()),
              port_suffix);
    server.stop();
}

}  // namespace

/// \file
/// CLI driver for the project-invariant linter. Typical invocations:
///
///     chrysalis_lint src bench examples            # scan, exit 1 on hit
///     chrysalis_lint --list-rules
///     chrysalis_lint --write-baseline lint.base src
///     chrysalis_lint --baseline lint.base src      # incremental adoption
///     chrysalis_lint --graph src tools tests bench # layering analysis
///     chrysalis_lint --graph --graph-out graph.dot src  # DOT export
///
/// Violations print as "file:line: rule: message" with repo-relative
/// paths, sorted, so output is stable across machines and thread
/// counts — the same property the tool exists to defend.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"
#include "lint_graph.hpp"

namespace fs = std::filesystem;
using chrysalis::lint::Violation;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitViolations = 1;
constexpr int kExitUsage = 2;

bool
lintable(const fs::path& path)
{
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Collects every lintable file under \p target (or the file itself),
/// sorted so reports are byte-stable regardless of directory order.
bool
collect(const fs::path& target, std::vector<fs::path>& files)
{
    std::error_code error;
    if (fs::is_directory(target, error)) {
        for (fs::recursive_directory_iterator it(target, error), end;
             !error && it != end; it.increment(error)) {
            if (it->is_regular_file() && lintable(it->path()))
                files.push_back(it->path());
        }
        return !error;
    }
    if (fs::is_regular_file(target, error)) {
        files.push_back(target);
        return true;
    }
    std::fprintf(stderr, "chrysalis_lint: no such file or directory: %s\n",
                 target.string().c_str());
    return false;
}

std::string
relative_path(const fs::path& path, const fs::path& root)
{
    std::error_code error;
    const fs::path rel =
        fs::proximate(fs::absolute(path, error), root, error);
    if (error || rel.empty())
        return path.generic_string();
    return rel.generic_string();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: chrysalis_lint [options] <file-or-dir>...\n"
        "  --root DIR            repo root for relative paths and\n"
        "                        path-scoped rules (default: cwd)\n"
        "  --baseline FILE       suppress violations listed in FILE\n"
        "  --write-baseline FILE write current violations to FILE and\n"
        "                        exit 0 (incremental adoption)\n"
        "  --list-rules          print rule ids and summaries\n"
        "  --graph               run the include-graph pass (layering,\n"
        "                        cycles, orphan headers) instead of the\n"
        "                        token rules\n"
        "  --layers FILE         layering spec for --graph (default:\n"
        "                        the compiled-in project spec)\n"
        "  --graph-out FILE      write the module dependency graph as\n"
        "                        GraphViz DOT (requires --graph)\n");
    return kExitUsage;
}

}  // namespace

int
main(int argc, char** argv)
{
    fs::path root = fs::current_path();
    std::string baseline_path;
    std::string write_baseline_path;
    std::string layers_path;
    std::string graph_out_path;
    bool graph_mode = false;
    std::vector<fs::path> targets;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto& rule : chrysalis::lint::rules())
                std::printf("%s: %s\n", rule.id.c_str(),
                            rule.summary.c_str());
            return kExitClean;
        }
        if (arg == "--graph") {
            graph_mode = true;
            continue;
        }
        if (arg == "--root" || arg == "--baseline" ||
            arg == "--write-baseline" || arg == "--layers" ||
            arg == "--graph-out") {
            if (i + 1 >= argc)
                return usage();
            const std::string value = argv[++i];
            if (arg == "--root")
                root = value;
            else if (arg == "--baseline")
                baseline_path = value;
            else if (arg == "--layers")
                layers_path = value;
            else if (arg == "--graph-out")
                graph_out_path = value;
            else
                write_baseline_path = value;
            continue;
        }
        if (!arg.empty() && arg[0] == '-')
            return usage();
        targets.emplace_back(arg);
    }
    if (targets.empty())
        return usage();
    if ((!layers_path.empty() || !graph_out_path.empty()) && !graph_mode) {
        std::fprintf(stderr,
                     "chrysalis_lint: --layers/--graph-out require "
                     "--graph\n");
        return kExitUsage;
    }

    std::error_code error;
    root = fs::absolute(root, error);

    std::vector<fs::path> files;
    for (const fs::path& target : targets) {
        if (!collect(target, files))
            return kExitUsage;
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Violation> violations;
    std::vector<chrysalis::lint::GraphFile> graph_files;
    for (const fs::path& file : files) {
        std::ifstream input(file, std::ios::binary);
        if (!input) {
            std::fprintf(stderr, "chrysalis_lint: cannot read %s\n",
                         file.string().c_str());
            return kExitUsage;
        }
        std::ostringstream content;
        content << input.rdbuf();
        const std::string rel = relative_path(file, root);
        // The golden-fixture corpus is intentionally full of
        // violations; a repo-root scan must not flag it. Fixture runs
        // pass --root tools/lint/testdata/<rule>, so their relative
        // paths start with src/ and are unaffected.
        if (rel.rfind("tools/lint/testdata/", 0) == 0)
            continue;
        if (graph_mode) {
            graph_files.push_back({rel, content.str()});
            continue;
        }
        for (Violation& violation :
             chrysalis::lint::scan_source(rel, content.str()))
            violations.push_back(std::move(violation));
    }
    if (graph_mode) {
        chrysalis::lint::LayerSpec parsed_spec;
        const chrysalis::lint::LayerSpec* spec =
            &chrysalis::lint::LayerSpec::builtin();
        if (!layers_path.empty()) {
            std::ifstream input(layers_path);
            if (!input) {
                std::fprintf(stderr,
                             "chrysalis_lint: cannot read layers %s\n",
                             layers_path.c_str());
                return kExitUsage;
            }
            std::ostringstream text;
            text << input.rdbuf();
            std::string parse_error;
            if (!chrysalis::lint::LayerSpec::parse(
                    text.str(), parsed_spec, parse_error)) {
                std::fprintf(stderr,
                             "chrysalis_lint: bad layers file %s: %s\n",
                             layers_path.c_str(), parse_error.c_str());
                return kExitUsage;
            }
            spec = &parsed_spec;
        }
        chrysalis::lint::GraphReport report =
            chrysalis::lint::analyze_graph(graph_files, *spec);
        violations = std::move(report.violations);
        if (!graph_out_path.empty()) {
            std::ofstream output(graph_out_path);
            if (!output) {
                std::fprintf(stderr,
                             "chrysalis_lint: cannot write %s\n",
                             graph_out_path.c_str());
                return kExitUsage;
            }
            output << report.dot;
        }
    }
    std::sort(violations.begin(), violations.end(),
              [](const Violation& a, const Violation& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });

    if (!write_baseline_path.empty()) {
        std::ofstream output(write_baseline_path);
        if (!output) {
            std::fprintf(stderr, "chrysalis_lint: cannot write %s\n",
                         write_baseline_path.c_str());
            return kExitUsage;
        }
        for (const Violation& violation : violations)
            output << chrysalis::lint::baseline_key(violation) << '\n';
        std::printf("chrysalis_lint: wrote %zu baseline entries to %s\n",
                    violations.size(), write_baseline_path.c_str());
        return kExitClean;
    }

    if (!baseline_path.empty()) {
        std::ifstream input(baseline_path);
        if (!input) {
            std::fprintf(stderr, "chrysalis_lint: cannot read baseline %s\n",
                         baseline_path.c_str());
            return kExitUsage;
        }
        std::vector<std::string> keys;
        std::string line;
        while (std::getline(input, line)) {
            if (!line.empty())
                keys.push_back(line);
        }
        violations = chrysalis::lint::apply_baseline(
            std::move(violations), keys);
    }

    for (const Violation& violation : violations) {
        std::printf("%s:%d: %s: %s\n", violation.file.c_str(),
                    violation.line, violation.rule.c_str(),
                    violation.message.c_str());
    }
    if (!violations.empty()) {
        std::fprintf(stderr,
                     "chrysalis_lint: %zu violation(s) in %zu file(s) "
                     "scanned\n",
                     violations.size(), files.size());
        return kExitViolations;
    }
    return kExitClean;
}

#include "lint_graph.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace chrysalis::lint {

namespace {

constexpr const char* kRuleLayering = "chrysalis-layering";
constexpr const char* kRuleCycle = "chrysalis-include-cycle";
constexpr const char* kRuleOrphan = "chrysalis-orphan-header";

/// The real tree's layering contract. Layer 0 is the foundation; a
/// module may include itself and strictly lower layers only. The top
/// modules (tests, benchmarks, tools, examples) may include anything
/// but nothing may include them — they are leaves of the build.
constexpr const char* kDefaultLayers = R"(# CHRYSALIS module layering
common = 0
obs = 1
dnn = 1
energy = 1
runtime = 2
dataflow = 2
fault = 2
hw = 3
sim = 3
search = 4
core = 5
serve = 6
dist = 7
top = tools tests bench examples
)";

bool
starts_with(const std::string& text, const std::string& head)
{
    return text.rfind(head, 0) == 0;
}

bool
ends_with(const std::string& text, const std::string& tail)
{
    return text.size() >= tail.size() &&
           text.compare(text.size() - tail.size(), tail.size(), tail) == 0;
}

std::string
trim_copy(const std::string& text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
is_header_path(const std::string& path)
{
    return ends_with(path, ".hpp") || ends_with(path, ".h");
}

/// Lexically normalizes "a/./b" and "a/x/../b" segments so resolved
/// include paths compare equal to the scanned file set.
std::string
normalize(const std::string& path)
{
    std::vector<std::string> parts;
    std::stringstream stream(path);
    std::string part;
    while (std::getline(stream, part, '/')) {
        if (part.empty() || part == ".")
            continue;
        if (part == ".." && !parts.empty() && parts.back() != "..") {
            parts.pop_back();
            continue;
        }
        parts.push_back(part);
    }
    std::string out;
    for (const std::string& p : parts) {
        if (!out.empty())
            out += '/';
        out += p;
    }
    return out;
}

std::string
dirname_of(const std::string& path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

/// One quoted include directive: target text plus the 1-based line.
struct IncludeDirective {
    std::string target;
    int line;
};

std::vector<IncludeDirective>
parse_includes(const std::string& content)
{
    static const std::regex quoted(
        R"(^\s*#\s*include\s*"([^"]+)\")");
    std::vector<IncludeDirective> out;
    std::stringstream stream(content);
    std::string line;
    int number = 0;
    while (std::getline(stream, line)) {
        ++number;
        std::smatch match;
        if (std::regex_search(line, match, quoted))
            out.push_back({match[1].str(), number});
    }
    return out;
}

/// Resolves \p target against the scanned file set the way the build's
/// include directories would: relative to the includer first, then the
/// project include roots. Returns "" when nothing matches (system or
/// generated header — not this pass's business).
std::string
resolve_include(const std::string& includer, const std::string& target,
                const std::set<std::string>& known)
{
    std::vector<std::string> candidates;
    const std::string dir = dirname_of(includer);
    if (!dir.empty())
        candidates.push_back(dir + "/" + target);
    candidates.push_back("src/" + target);
    candidates.push_back("tools/lint/" + target);
    candidates.push_back("bench/" + target);
    candidates.push_back(target);
    for (const std::string& candidate : candidates) {
        const std::string path = normalize(candidate);
        if (known.count(path) > 0)
            return path;
    }
    return std::string();
}

struct Edge {
    std::string to;  ///< resolved repo-relative path
    int line;        ///< line of the #include in the source file
};

/// File-level include graph over the scanned set, with deterministic
/// (sorted) node and edge order.
struct FileGraph {
    std::vector<std::string> nodes;            // sorted paths
    std::map<std::string, std::vector<Edge>> edges;
};

FileGraph
build_graph(const std::vector<GraphFile>& files)
{
    FileGraph graph;
    std::set<std::string> known;
    for (const GraphFile& file : files)
        known.insert(file.path);
    graph.nodes.assign(known.begin(), known.end());
    for (const GraphFile& file : files) {
        std::vector<Edge>& out = graph.edges[file.path];
        for (const IncludeDirective& directive :
             parse_includes(file.content)) {
            const std::string to =
                resolve_include(file.path, directive.target, known);
            if (!to.empty() && to != file.path)
                out.push_back({to, directive.line});
        }
        std::sort(out.begin(), out.end(),
                  [](const Edge& a, const Edge& b) {
                      return std::tie(a.to, a.line) <
                             std::tie(b.to, b.line);
                  });
    }
    return graph;
}

void
add_violation(std::vector<Violation>& out, const std::string& file,
              int line, const char* rule, std::string message)
{
    out.push_back({file, line, rule, std::move(message), ""});
}

// ---- Layer check ---------------------------------------------------------

void
check_layers(std::vector<Violation>& out, const FileGraph& graph,
             const LayerSpec& spec)
{
    for (const std::string& from : graph.nodes) {
        const std::string from_module = module_of(from);
        if (spec.top.count(from_module) > 0)
            continue;  // leaves of the build may include anything
        const auto from_rank = spec.ranks.find(from_module);
        if (from_rank == spec.ranks.end()) {
            add_violation(out, from, 1, kRuleLayering,
                          "module '" + from_module +
                              "' is not in the layering spec; add it to "
                              "the layer table (tools/lint/lint_graph.cpp "
                              "or the --layers file)");
            continue;
        }
        const auto it = graph.edges.find(from);
        if (it == graph.edges.end())
            continue;
        for (const Edge& edge : it->second) {
            const std::string to_module = module_of(edge.to);
            if (to_module == from_module)
                continue;
            if (spec.top.count(to_module) > 0) {
                add_violation(
                    out, from, edge.line, kRuleLayering,
                    "module '" + from_module + "' includes '" + edge.to +
                        "' from top-level module '" + to_module +
                        "'; tests/bench/tools are build leaves and may "
                        "not be depended on");
                continue;
            }
            const auto to_rank = spec.ranks.find(to_module);
            if (to_rank == spec.ranks.end()) {
                add_violation(out, from, edge.line, kRuleLayering,
                              "module '" + to_module +
                                  "' (included via '" + edge.to +
                                  "') is not in the layering spec");
                continue;
            }
            if (to_rank->second >= from_rank->second) {
                add_violation(
                    out, from, edge.line, kRuleLayering,
                    "module '" + from_module + "' (layer " +
                        std::to_string(from_rank->second) +
                        ") may not include '" + edge.to + "' of module '" +
                        to_module + "' (layer " +
                        std::to_string(to_rank->second) +
                        "); include edges must point strictly down the "
                        "layering");
            }
        }
    }
}

// ---- Cycle detection (Tarjan SCC) ----------------------------------------

struct TarjanState {
    const FileGraph& graph;
    std::map<std::string, int> index;
    std::map<std::string, int> lowlink;
    std::set<std::string> on_stack;
    std::vector<std::string> stack;
    int next_index = 0;
    std::vector<std::vector<std::string>> components;

    void strongconnect(const std::string& node)
    {
        index[node] = next_index;
        lowlink[node] = next_index;
        ++next_index;
        stack.push_back(node);
        on_stack.insert(node);
        const auto it = graph.edges.find(node);
        if (it != graph.edges.end()) {
            for (const Edge& edge : it->second) {
                if (index.count(edge.to) == 0) {
                    strongconnect(edge.to);
                    lowlink[node] =
                        std::min(lowlink[node], lowlink[edge.to]);
                } else if (on_stack.count(edge.to) > 0) {
                    lowlink[node] =
                        std::min(lowlink[node], index[edge.to]);
                }
            }
        }
        if (lowlink[node] == index[node]) {
            std::vector<std::string> component;
            while (true) {
                const std::string member = stack.back();
                stack.pop_back();
                on_stack.erase(member);
                component.push_back(member);
                if (member == node)
                    break;
            }
            components.push_back(std::move(component));
        }
    }
};

/// Finds an actual include walk inside \p members from \p start back to
/// itself, so cycle reports show a real chain rather than a bag of
/// files.
std::vector<std::string>
cycle_walk(const FileGraph& graph, const std::set<std::string>& members,
           const std::string& start)
{
    std::vector<std::string> path{start};
    std::set<std::string> visited{start};
    std::string current = start;
    while (true) {
        const auto it = graph.edges.find(current);
        if (it == graph.edges.end())
            break;  // unreachable for a genuine SCC
        bool advanced = false;
        for (const Edge& edge : it->second) {
            if (edge.to == start && path.size() > 1) {
                path.push_back(start);
                return path;
            }
            if (members.count(edge.to) > 0 &&
                visited.count(edge.to) == 0) {
                path.push_back(edge.to);
                visited.insert(edge.to);
                current = edge.to;
                advanced = true;
                break;
            }
            if (edge.to == start && members.size() == 1) {
                path.push_back(start);
                return path;
            }
        }
        if (!advanced) {
            // Dead end inside the SCC: backtrack by closing on the
            // first member that reaches start (guaranteed to exist).
            for (const Edge& edge : it->second) {
                if (edge.to == start) {
                    path.push_back(start);
                    return path;
                }
            }
            break;
        }
    }
    path.push_back(start);
    return path;
}

void
check_cycles(std::vector<Violation>& out, const FileGraph& graph)
{
    TarjanState tarjan{graph, {}, {}, {}, {}, 0, {}};
    for (const std::string& node : graph.nodes) {
        if (tarjan.index.count(node) == 0)
            tarjan.strongconnect(node);
    }
    for (std::vector<std::string>& component : tarjan.components) {
        bool self_loop = false;
        if (component.size() == 1) {
            const auto it = graph.edges.find(component.front());
            if (it != graph.edges.end()) {
                for (const Edge& edge : it->second)
                    self_loop = self_loop || edge.to == component.front();
            }
            if (!self_loop)
                continue;
        }
        std::sort(component.begin(), component.end());
        const std::string& anchor = component.front();
        const std::set<std::string> members(component.begin(),
                                            component.end());
        const std::vector<std::string> walk =
            cycle_walk(graph, members, anchor);
        int line = 1;
        if (walk.size() > 1) {
            const auto it = graph.edges.find(anchor);
            if (it != graph.edges.end()) {
                for (const Edge& edge : it->second) {
                    if (edge.to == walk[1]) {
                        line = edge.line;
                        break;
                    }
                }
            }
        }
        std::string chain;
        for (const std::string& member : walk) {
            if (!chain.empty())
                chain += " -> ";
            chain += member;
        }
        add_violation(out, anchor, line, kRuleCycle,
                      "include cycle: " + chain);
    }
}

// ---- Orphan headers ------------------------------------------------------

void
check_orphans(std::vector<Violation>& out, const FileGraph& graph)
{
    std::set<std::string> reachable;
    std::vector<std::string> frontier;
    for (const std::string& node : graph.nodes) {
        if (!is_header_path(node)) {
            reachable.insert(node);
            frontier.push_back(node);
        }
    }
    while (!frontier.empty()) {
        const std::string node = frontier.back();
        frontier.pop_back();
        const auto it = graph.edges.find(node);
        if (it == graph.edges.end())
            continue;
        for (const Edge& edge : it->second) {
            if (reachable.insert(edge.to).second)
                frontier.push_back(edge.to);
        }
    }
    for (const std::string& node : graph.nodes) {
        if (is_header_path(node) && reachable.count(node) == 0) {
            add_violation(
                out, node, 1, kRuleOrphan,
                "header is not reachable from any translation unit in "
                "the scanned tree; delete it or include it from the "
                "code that should own it");
        }
    }
}

// ---- DOT export ----------------------------------------------------------

std::string
render_dot(const FileGraph& graph, const LayerSpec& spec)
{
    // Module-level projection, layered modules only: the top modules
    // (tests, bench, ...) depend on nearly everything and would bury
    // the architecture under edge clutter.
    std::set<std::string> modules;
    std::set<std::pair<std::string, std::string>> edges;
    for (const std::string& from : graph.nodes) {
        const std::string from_module = module_of(from);
        if (spec.top.count(from_module) > 0)
            continue;
        modules.insert(from_module);
        const auto it = graph.edges.find(from);
        if (it == graph.edges.end())
            continue;
        for (const Edge& edge : it->second) {
            const std::string to_module = module_of(edge.to);
            if (to_module == from_module ||
                spec.top.count(to_module) > 0)
                continue;
            modules.insert(to_module);
            edges.insert({from_module, to_module});
        }
    }

    std::ostringstream dot;
    dot << "digraph chrysalis_modules {\n"
        << "    rankdir = BT;\n"
        << "    node [shape = box, fontname = \"Helvetica\"];\n";
    // Pin each layer to one rank so the drawing mirrors the spec.
    std::map<int, std::vector<std::string>> by_rank;
    for (const std::string& module : modules) {
        const auto it = spec.ranks.find(module);
        if (it != spec.ranks.end())
            by_rank[it->second].push_back(module);
    }
    for (const auto& [rank, names] : by_rank) {
        dot << "    { rank = same;";
        for (const std::string& name : names)
            dot << " \"" << name << "\";";
        dot << " }  // layer " << rank << "\n";
    }
    for (const auto& [from, to] : edges)
        dot << "    \"" << from << "\" -> \"" << to << "\";\n";
    dot << "}\n";
    return dot.str();
}

}  // namespace

// ---- Public API ----------------------------------------------------------

const LayerSpec&
LayerSpec::builtin()
{
    static const LayerSpec spec = [] {
        LayerSpec parsed;
        std::string error;
        if (!LayerSpec::parse(kDefaultLayers, parsed, error))
            // Unreachable unless the embedded table is edited badly;
            // fail loud rather than silently enforce nothing.
            throw std::logic_error("builtin layer spec: " + error);
        return parsed;
    }();
    return spec;
}

bool
LayerSpec::parse(const std::string& text, LayerSpec& spec,
                 std::string& error)
{
    spec = LayerSpec{};
    std::stringstream stream(text);
    std::string line;
    int number = 0;
    while (std::getline(stream, line)) {
        ++number;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim_copy(line);
        if (line.empty())
            continue;
        const std::size_t equals = line.find('=');
        if (equals == std::string::npos) {
            error = "line " + std::to_string(number) +
                    ": expected 'module = rank' or 'top = a b c'";
            return false;
        }
        const std::string key = trim_copy(line.substr(0, equals));
        const std::string value = trim_copy(line.substr(equals + 1));
        if (key.empty() || value.empty()) {
            error = "line " + std::to_string(number) +
                    ": empty module name or value";
            return false;
        }
        if (key == "top") {
            std::stringstream names(value);
            std::string name;
            while (names >> name) {
                if (spec.ranks.count(name) > 0) {
                    error = "line " + std::to_string(number) +
                            ": module '" + name +
                            "' is both ranked and top";
                    return false;
                }
                spec.top.insert(name);
            }
            continue;
        }
        if (spec.ranks.count(key) > 0 || spec.top.count(key) > 0) {
            error = "line " + std::to_string(number) +
                    ": duplicate module '" + key + "'";
            return false;
        }
        try {
            std::size_t consumed = 0;
            const int rank = std::stoi(value, &consumed);
            if (consumed != value.size() || rank < 0)
                throw std::invalid_argument(value);
            spec.ranks[key] = rank;
        } catch (const std::exception&) {
            error = "line " + std::to_string(number) + ": rank '" +
                    value + "' is not a non-negative integer";
            return false;
        }
    }
    if (spec.ranks.empty()) {
        error = "spec declares no ranked modules";
        return false;
    }
    return true;
}

std::string
module_of(const std::string& rel_path)
{
    std::string trimmed = rel_path;
    if (starts_with(trimmed, "src/"))
        trimmed = trimmed.substr(4);
    const std::size_t slash = trimmed.find('/');
    return slash == std::string::npos ? trimmed
                                      : trimmed.substr(0, slash);
}

GraphReport
analyze_graph(const std::vector<GraphFile>& files, const LayerSpec& spec)
{
    const FileGraph graph = build_graph(files);
    GraphReport report;
    check_layers(report.violations, graph, spec);
    check_cycles(report.violations, graph);
    check_orphans(report.violations, graph);
    std::sort(report.violations.begin(), report.violations.end(),
              [](const Violation& a, const Violation& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    report.dot = render_dot(graph, spec);
    return report;
}

}  // namespace chrysalis::lint

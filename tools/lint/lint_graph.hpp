/// \file
/// Include-graph layering analyzer behind `chrysalis_lint --graph`.
///
/// The pass parses the quoted `#include` edges of every scanned file,
/// maps files to modules (src/<m>/... -> m; tools/tests/bench/examples
/// are "top" modules), and checks the edges against a declarative
/// layering spec: a module may only include itself and modules on a
/// strictly lower layer, top modules may include anything, and nothing
/// may include a top module. On top of the layer check the pass
/// detects include cycles (strongly connected components of the file
/// graph) and headers unreachable from any translation unit, and can
/// export the module graph as GraphViz DOT for the docs.

#ifndef CHRYSALIS_TOOLS_LINT_LINT_GRAPH_HPP
#define CHRYSALIS_TOOLS_LINT_LINT_GRAPH_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace chrysalis::lint {

/// One scanned file handed to the analyzer: repo-relative path
/// ('/'-separated) plus its full text.
struct GraphFile {
    std::string path;
    std::string content;
};

/// Declarative module layering: every module is assigned a layer rank
/// (0 = foundation) or marked "top". The spec format is one `module =
/// rank` assignment per line plus a single `top = a b c` line; '#'
/// starts a comment. The compiled-in default (builtin()) describes the
/// real tree; fixtures and downstream forks load their own via
/// `--layers FILE`.
struct LayerSpec {
    std::map<std::string, int> ranks;
    std::set<std::string> top;

    /// The project's layering contract (see docs/static_analysis.md).
    static const LayerSpec& builtin();

    /// Parses the text form. Returns false and sets \p error on a
    /// malformed line, a duplicate module, or an empty spec.
    static bool parse(const std::string& text, LayerSpec& spec,
                      std::string& error);
};

/// Module owning \p rel_path: "src/<m>/..." -> "<m>", otherwise the
/// first path component ("tools", "tests", "bench", "examples", ...).
std::string module_of(const std::string& rel_path);

/// Result of one graph analysis.
struct GraphReport {
    /// Findings, sorted by (file, line, rule, message):
    ///   chrysalis-layering       forbidden cross-module include
    ///   chrysalis-include-cycle  include cycle (one report per cycle)
    ///   chrysalis-orphan-header  header no translation unit reaches
    std::vector<Violation> violations;
    /// Module-level dependency graph in GraphViz DOT, byte-stable.
    std::string dot;
};

/// Analyzes the include graph of \p files against \p spec. Only quoted
/// includes that resolve to a scanned file become edges; system and
/// unresolved includes are ignored (the token pass owns banned-header
/// checks).
GraphReport analyze_graph(const std::vector<GraphFile>& files,
                          const LayerSpec& spec);

}  // namespace chrysalis::lint

#endif  // CHRYSALIS_TOOLS_LINT_LINT_GRAPH_HPP

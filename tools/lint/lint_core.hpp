/// \file
/// Core of `chrysalis_lint`: a tokenizer-based checker for the project
/// invariants no compiler enforces — deterministic randomness and
/// timing, ordered iteration in report paths, `%.17g` float
/// serialization, SI-unit naming, and header hygiene.
///
/// The scanner is deliberately not a compiler: it strips comments and
/// string literals with a small state machine and then matches rules
/// against the remaining code text. That keeps the tool dependency-free
/// (no libclang) and fast enough to run as a ctest, at the cost of
/// heuristics documented per rule in docs/static_analysis.md.

#ifndef CHRYSALIS_TOOLS_LINT_LINT_CORE_HPP
#define CHRYSALIS_TOOLS_LINT_LINT_CORE_HPP

#include <string>
#include <vector>

namespace chrysalis::lint {

/// One finding, printed as "file:line: rule: message".
struct Violation {
    std::string file;     ///< repo-relative path, '/'-separated
    int line = 0;         ///< 1-based
    std::string rule;     ///< "chrysalis-..." rule id
    std::string message;
    std::string source;   ///< trimmed source line (baseline matching key)
};

/// A rule's id plus the one-line summary shown by --list-rules.
struct RuleInfo {
    std::string id;
    std::string summary;
};

/// All rules the scanner implements, in report order.
const std::vector<RuleInfo>& rules();

/// Scans one translation unit / header. \p rel_path must be the path
/// relative to the repository root ('/'-separated) — several rules are
/// path-scoped (e.g. monotonic clocks are legal only under src/obs/).
/// Returned violations are sorted by (line, rule) and already account
/// for NOLINT suppressions; malformed suppressions are themselves
/// reported as "chrysalis-nolint" violations.
std::vector<Violation> scan_source(const std::string& rel_path,
                                   const std::string& content);

/// Baseline entry for \p violation: "file|rule|trimmed source line".
/// Line numbers are deliberately excluded so unrelated edits above a
/// baselined site do not invalidate the baseline.
std::string baseline_key(const Violation& violation);

/// Removes violations covered by \p baseline_keys. Each baseline entry
/// absorbs at most one violation (duplicate lines need duplicate
/// entries), so fixing one of two identical sites still surfaces the
/// other.
std::vector<Violation>
apply_baseline(std::vector<Violation> violations,
               const std::vector<std::string>& baseline_keys);

}  // namespace chrysalis::lint

#endif  // CHRYSALIS_TOOLS_LINT_LINT_CORE_HPP

#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace chrysalis::lint {

namespace {

// ---- Rule registry -------------------------------------------------------

constexpr const char* kRuleRand = "chrysalis-rand";
constexpr const char* kRuleClock = "chrysalis-clock";
constexpr const char* kRuleGetenv = "chrysalis-getenv";
constexpr const char* kRuleUnorderedIter = "chrysalis-unordered-iter";
constexpr const char* kRuleFloatFormat = "chrysalis-float-format";
constexpr const char* kRuleUnitSuffix = "chrysalis-unit-suffix";
constexpr const char* kRuleHeaderGuard = "chrysalis-header-guard";
constexpr const char* kRuleInclude = "chrysalis-include";
constexpr const char* kRuleRawLock = "chrysalis-raw-lock";
constexpr const char* kRuleNolint = "chrysalis-nolint";

// Reported by the --graph pass (lint_graph.cpp); registered here so
// --list-rules shows them and NOLINT/baseline validation accepts them.
constexpr const char* kRuleLayering = "chrysalis-layering";
constexpr const char* kRuleCycle = "chrysalis-include-cycle";
constexpr const char* kRuleOrphan = "chrysalis-orphan-header";

/// Files allowed to call getenv(): the two designated env-knob modules
/// (log level, bench report toggles). Everything else must thread
/// configuration through options structs so runs are reproducible from
/// their inputs alone.
constexpr const char* kGetenvAllowlist[] = {
    "src/common/logging.cpp",
    "bench/common/bench_util.cpp",
};

/// Monotonic clocks are an observability concern; only src/obs/ may
/// touch them directly so timing can never leak into deterministic
/// outputs unnoticed.
constexpr const char* kClockAllowedPrefix = "src/obs/";

/// Report/journal paths where raw printf float conversions are banned
/// in favour of format_double_17g() (prefix match, extension-agnostic).
constexpr const char* kReportPathPrefixes[] = {
    "src/core/campaign",      // campaign.cpp/hpp + campaign_journal.*
    "src/dist/",              // merged output must stay byte-identical
    "src/obs/metrics",
    "src/common/table",
    "bench/common/bench_util",
};

/// Home of the sanctioned formatting helpers; exempt from the
/// float-format rule so the helpers themselves can exist.
constexpr const char* kFormatHelperPrefix = "src/common/string_utils";

/// The annotated RAII wrappers (chrysalis::Mutex / MutexLock / CondVar)
/// are the one place allowed to call the raw lock primitives; every
/// other module must hold locks through scoped guards.
constexpr const char* kRawLockExemptPrefix = "src/common/mutex";

/// Non-SI unit suffixes on double/float declarations. The project
/// stores physical quantities in SI base units (common/units.hpp);
/// a `_ms` or `_uf` name means a convention violation waiting to
/// corrupt an energy budget by 10^3.
constexpr const char* kBannedUnitSuffixes[] = {
    "ms", "us", "ns", "uj", "mj", "kj", "mv", "kv", "uf", "mf", "nf",
    "pf", "mw", "kw", "uw", "khz", "mhz", "ghz", "ma", "ua", "mah",
    "wh", "hr", "min",
};

struct BannedHeader {
    const char* name;
    const char* message;
};

/// OS networking / raw-fd headers are the serving layer's concern;
/// confining them to src/serve/ keeps every evaluator, search and
/// simulator translation unit byte-reproducible and trivially portable
/// (no accidental socket, poll or fd dependencies in core code).
constexpr const char* kNetworkAllowedPrefix = "src/serve/";

constexpr const char* kNetworkHeaders[] = {
    "sys/socket.h", "netinet/in.h", "netinet/tcp.h", "arpa/inet.h",
    "unistd.h",     "poll.h",       "fcntl.h",       "sys/time.h",
};

constexpr BannedHeader kBannedHeaders[] = {
    {"stdio.h", "include <cstdio> instead of the C header"},
    {"stdlib.h", "include <cstdlib> instead of the C header"},
    {"string.h", "include <cstring> instead of the C header"},
    {"math.h", "include <cmath> instead of the C header"},
    {"assert.h", "include <cassert> instead of the C header"},
    {"limits.h", "include <climits> instead of the C header"},
    {"stdint.h", "include <cstdint> instead of the C header"},
    {"stddef.h", "include <cstddef> instead of the C header"},
    {"errno.h", "include <cerrno> instead of the C header"},
};

// ---- Tokenized view of one file ------------------------------------------

/// Per-file scan state: the raw lines, a "code view" with comments and
/// literal contents blanked (so rules cannot fire inside strings), the
/// comment text per line (for NOLINT parsing) and the extracted string
/// literals (for the float-format rule).
struct FileView {
    std::string path;                    ///< repo-relative
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::vector<std::string> comment;
    struct Literal {
        int line;
        std::string text;
    };
    std::vector<Literal> literals;

    bool is_header() const
    {
        return ends_with(path, ".hpp") || ends_with(path, ".h");
    }

    static bool ends_with(const std::string& text, const std::string& tail)
    {
        return text.size() >= tail.size() &&
               text.compare(text.size() - tail.size(), tail.size(), tail)
                   == 0;
    }
};

bool
starts_with(const std::string& text, const std::string& head)
{
    return text.rfind(head, 0) == 0;
}

std::string
trim_copy(const std::string& text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

/// Splits \p content into the code/comment/literal views. Handles //,
/// /*...*/, "..." and '...' with escapes, R"delim(...)delim" raw
/// strings, and C++14 digit separators (1'000 is not a char literal).
FileView
tokenize(const std::string& rel_path, const std::string& content)
{
    FileView view;
    view.path = rel_path;

    enum class State {
        kCode,
        kLineComment,
        kBlockComment,
        kString,
        kChar,
        kRawString
    };
    State state = State::kCode;

    std::string code_line;
    std::string comment_line;
    std::string raw_line;
    std::string literal;
    std::string raw_delimiter;  // for R"delim( ... )delim"
    int literal_line = 1;
    int line = 1;
    char prev_code = '\0';

    const auto flush_line = [&] {
        view.raw.push_back(raw_line);
        view.code.push_back(code_line);
        view.comment.push_back(comment_line);
        raw_line.clear();
        code_line.clear();
        comment_line.clear();
        ++line;
    };

    for (std::size_t i = 0; i < content.size(); ++i) {
        const char c = content[i];
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c != '\n')
            raw_line += c;

        switch (state) {
          case State::kCode:
            if (c == '/' && next == '/') {
                state = State::kLineComment;
                ++i;
                raw_line += next;
            } else if (c == '/' && next == '*') {
                state = State::kBlockComment;
                ++i;
                raw_line += next;
            } else if (c == '"') {
                // R"( opens a raw string when the R directly abuts the
                // quote (also covers u8R etc. since the R is adjacent).
                if (prev_code == 'R') {
                    state = State::kRawString;
                    raw_delimiter.clear();
                    std::size_t j = i + 1;
                    while (j < content.size() && content[j] != '(')
                        raw_delimiter += content[j++];
                } else {
                    state = State::kString;
                }
                literal.clear();
                literal_line = line;
                code_line += '"';
                prev_code = '"';
            } else if (c == '\'' &&
                       !(std::isalnum(
                             static_cast<unsigned char>(prev_code)) ||
                         prev_code == '_')) {
                state = State::kChar;
                code_line += '\'';
                prev_code = '\'';
            } else if (c == '\n') {
                flush_line();
                prev_code = '\0';
            } else {
                code_line += c;
                if (!std::isspace(static_cast<unsigned char>(c)))
                    prev_code = c;
            }
            break;

          case State::kLineComment:
            if (c == '\n') {
                state = State::kCode;
                flush_line();
                prev_code = '\0';
            } else {
                comment_line += c;
            }
            break;

          case State::kBlockComment:
            if (c == '*' && next == '/') {
                state = State::kCode;
                ++i;
                raw_line += next;
            } else if (c == '\n') {
                flush_line();
            } else {
                comment_line += c;
            }
            break;

          case State::kString:
            if (c == '\\' && next != '\0') {
                literal += c;
                literal += next;
                if (next != '\n')
                    raw_line += next;
                else
                    flush_line();
                ++i;
            } else if (c == '"') {
                state = State::kCode;
                code_line += '"';
                view.literals.push_back({literal_line, literal});
                prev_code = '\0';  // '"' would retrigger raw-string check
            } else if (c == '\n') {
                flush_line();  // unterminated; tolerate and resync
                state = State::kCode;
            } else {
                literal += c;
            }
            break;

          case State::kChar:
            if (c == '\\' && next != '\0') {
                raw_line += next;
                ++i;
            } else if (c == '\'') {
                state = State::kCode;
                code_line += '\'';
            } else if (c == '\n') {
                flush_line();
                state = State::kCode;
            }
            break;

          case State::kRawString: {
            const std::string close = ")" + raw_delimiter + "\"";
            if (content.compare(i, close.size(), close) == 0) {
                for (std::size_t j = 1; j < close.size(); ++j)
                    raw_line += close[j];
                i += close.size() - 1;
                state = State::kCode;
                code_line += '"';
                view.literals.push_back({literal_line, literal});
                prev_code = '\0';
            } else if (c == '\n') {
                literal += c;
                flush_line();
            } else {
                literal += c;
            }
            break;
          }
        }
    }
    if (!raw_line.empty() || !code_line.empty() || !comment_line.empty())
        flush_line();
    return view;
}

// ---- NOLINT parsing ------------------------------------------------------

/// Suppressions parsed from comments: rule id -> lines it covers.
struct Suppressions {
    std::map<int, std::set<std::string>> by_line;
    std::vector<Violation> malformed;

    bool covers(const std::string& rule, int line) const
    {
        const auto it = by_line.find(line);
        return it != by_line.end() && it->second.count(rule) > 0;
    }
};

bool
is_known_rule(const std::string& id)
{
    for (const RuleInfo& info : rules()) {
        if (info.id == id)
            return true;
    }
    return false;
}

void
add_malformed(Suppressions& out, const FileView& view, int line,
              const std::string& message)
{
    out.malformed.push_back({view.path, line, kRuleNolint, message,
                             trim_copy(view.raw[line - 1])});
}

/// Accepts NOLINT and NOLINTNEXTLINE directives: the word, a
/// parenthesised comma-separated rule list, then a ':' and a free-text
/// justification. An empty rule list, an unknown chrysalis- rule id,
/// or a missing justification is itself a violation: suppressions are
/// part of the audit trail and must say what they waive and why. A
/// bare NOLINT word without parentheses is prose, not a directive — it
/// suppresses nothing and is ignored. Directives naming only foreign
/// rules (no "chrysalis-" prefix, e.g. clang-tidy's
/// NOLINT(concurrency-mt-unsafe)) belong to another tool and pass
/// through untouched.
Suppressions
parse_suppressions(const FileView& view)
{
    Suppressions out;
    static const std::regex pattern(
        R"(NOLINT(NEXTLINE)?\(([^)]*)\)\s*(:\s*(.*))?)");
    for (std::size_t i = 0; i < view.comment.size(); ++i) {
        const std::string& comment = view.comment[i];
        if (comment.find("NOLINT") == std::string::npos)
            continue;
        const int line = static_cast<int>(i) + 1;
        std::smatch match;
        if (!std::regex_search(comment, match, pattern))
            continue;
        if (trim_copy(match[2].str()).empty()) {
            add_malformed(out, view, line,
                          "NOLINT requires an explicit rule list: "
                          "NOLINT(chrysalis-<rule>): <justification>");
            continue;
        }
        std::stringstream list(match[2].str());
        std::string rule;
        std::vector<std::string> ours;
        bool any_chrysalis = false;
        while (std::getline(list, rule, ',')) {
            rule = trim_copy(rule);
            if (rule.rfind("chrysalis-", 0) == 0) {
                any_chrysalis = true;
                ours.push_back(rule);
            }
        }
        if (!any_chrysalis)
            continue;  // clang-tidy (or other tool) directive
        if (!match[3].matched || trim_copy(match[4].str()).empty()) {
            add_malformed(out, view, line,
                          "NOLINT requires a justification after the "
                          "rule list: NOLINT(chrysalis-<rule>): <why>");
            continue;
        }
        bool ok = true;
        for (const std::string& id : ours) {
            if (!is_known_rule(id)) {
                add_malformed(out, view, line,
                              "unknown rule '" + id +
                                  "' in NOLINT (see --list-rules)");
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        const int target = match[1].matched ? line + 1 : line;
        for (const std::string& id : ours)
            out.by_line[target].insert(id);
    }
    return out;
}

// ---- Rule helpers --------------------------------------------------------

void
add(std::vector<Violation>& out, const FileView& view, int line,
    const char* rule, std::string message)
{
    out.push_back({view.path, line, rule, std::move(message),
                   trim_copy(view.raw[line - 1])});
}

/// Runs \p pattern over every code line, reporting each match.
template <typename MessageFn>
void
match_lines(std::vector<Violation>& out, const FileView& view,
            const std::regex& pattern, const char* rule,
            MessageFn&& message)
{
    for (std::size_t i = 0; i < view.code.size(); ++i) {
        std::smatch match;
        if (std::regex_search(view.code[i], match, pattern))
            add(out, view, static_cast<int>(i) + 1, rule, message(match));
    }
}

// ---- Rules ---------------------------------------------------------------

void
check_rand(std::vector<Violation>& out, const FileView& view)
{
    static const std::regex pattern(
        R"(\b(srand|rand)\s*\(|\brandom_device\b|\brandom_shuffle\b)");
    match_lines(out, view, pattern, kRuleRand, [](const std::smatch& m) {
        return "nondeterministic randomness '" + trim_copy(m.str()) +
               "'; seed chrysalis::Rng explicitly (common/rng.hpp)";
    });
}

void
check_clock(std::vector<Violation>& out, const FileView& view)
{
    static const std::regex wall(R"(\bsystem_clock\b)");
    match_lines(out, view, wall, kRuleClock, [](const std::smatch&) {
        return std::string(
            "wall-clock time is nondeterministic; timestamps may not "
            "feed reports or seeds (use obs:: helpers for telemetry)");
    });
    if (starts_with(view.path, kClockAllowedPrefix))
        return;
    static const std::regex mono(
        R"(\b(steady_clock|high_resolution_clock)\b)");
    match_lines(out, view, mono, kRuleClock, [](const std::smatch& m) {
        std::string message = "'";
        message += m.str();
        message += "' outside src/obs/; measure time via obs::SpanTimer "
                   "/ obs::thread_cpu_seconds so timing stays in "
                   "telemetry";
        return message;
    });
}

void
check_getenv(std::vector<Violation>& out, const FileView& view)
{
    for (const char* allowed : kGetenvAllowlist) {
        if (view.path == allowed)
            return;
    }
    static const std::regex pattern(R"(\bgetenv\s*\()");
    match_lines(out, view, pattern, kRuleGetenv, [](const std::smatch&) {
        return std::string(
            "getenv() outside the env-knob allowlist (logging, "
            "bench_util); thread configuration through options structs");
    });
}

/// Joins the code view into one string with a line lookup table, for
/// rules whose patterns span physical lines (template argument lists).
struct JoinedCode {
    std::string text;
    std::vector<std::size_t> line_offsets;  // offset of each line start

    explicit JoinedCode(const FileView& view)
    {
        for (const std::string& line : view.code) {
            line_offsets.push_back(text.size());
            text += line;
            text += '\n';
        }
    }

    int line_of(std::size_t offset) const
    {
        const auto it = std::upper_bound(line_offsets.begin(),
                                         line_offsets.end(), offset);
        return static_cast<int>(it - line_offsets.begin());
    }
};

void
check_unordered_iteration(std::vector<Violation>& out, const FileView& view)
{
    const JoinedCode joined(view);
    const std::string& text = joined.text;

    // Pass 1: names declared with an unordered container type. The
    // declarator is the first identifier after the balanced <...>.
    std::set<std::string> unordered_names;
    static const std::regex decl(R"(\bunordered_(map|set)\s*<)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), decl);
         it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position()) +
                          it->length() - 1;
        int depth = 0;
        while (pos < text.size()) {
            if (text[pos] == '<')
                ++depth;
            else if (text[pos] == '>' && --depth == 0)
                break;
            ++pos;
        }
        if (pos >= text.size())
            continue;
        ++pos;
        while (pos < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '&' || text[pos] == '*'))
            ++pos;
        std::string name;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '_'))
            name += text[pos++];
        if (!name.empty())
            unordered_names.insert(name);
    }
    if (unordered_names.empty())
        return;

    // Pass 2: range-fors and explicit iterator loops over those names.
    static const std::regex range_for(R"(\bfor\s*\([^;)]*:\s*(\w+)\s*\))");
    static const std::regex iter_for(R"(=\s*(\w+)\s*\.\s*begin\s*\(\))");
    for (const std::regex* pattern : {&range_for, &iter_for}) {
        for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                            *pattern);
             it != std::sregex_iterator(); ++it) {
            const std::string name = (*it)[1].str();
            if (unordered_names.count(name) == 0)
                continue;
            const int line =
                joined.line_of(static_cast<std::size_t>(it->position()));
            add(out, view, line, kRuleUnorderedIter,
                "iteration over unordered container '" + name +
                    "' has unspecified order; sort keys (or use an "
                    "ordered container) before emitting output or "
                    "hashing");
        }
    }
}

void
check_float_format(std::vector<Violation>& out, const FileView& view)
{
    if (starts_with(view.path, kFormatHelperPrefix))
        return;
    bool report_path = false;
    for (const char* prefix : kReportPathPrefixes)
        report_path = report_path || starts_with(view.path, prefix);
    if (!report_path)
        return;
    static const std::regex conversion(
        R"(%[-+ #0]*[0-9]*(\.[0-9*]+)?l?[efgaEFGA])");
    for (const FileView::Literal& literal : view.literals) {
        if (std::regex_search(literal.text, conversion)) {
            add(out, view, literal.line, kRuleFloatFormat,
                "raw printf float conversion in journal/report code; "
                "route doubles through format_double_17g() "
                "(common/string_utils.hpp) so values round-trip "
                "bit-exactly");
        }
    }
}

void
check_unit_suffix(std::vector<Violation>& out, const FileView& view)
{
    static const std::regex decl(R"(\b(?:double|float)\b\s*&?\s*(\w+))");
    for (std::size_t i = 0; i < view.code.size(); ++i) {
        const std::string& line = view.code[i];
        for (auto it = std::sregex_iterator(line.begin(), line.end(), decl);
             it != std::sregex_iterator(); ++it) {
            const std::string name = (*it)[1].str();
            const std::size_t underscore = name.rfind('_');
            if (underscore == std::string::npos)
                continue;
            const std::string suffix = name.substr(underscore + 1);
            for (const char* banned : kBannedUnitSuffixes) {
                if (suffix == banned) {
                    add(out, view, static_cast<int>(i) + 1,
                        kRuleUnitSuffix,
                        "double '" + name + "' carries non-SI suffix '_" +
                            suffix + "'; store SI base units "
                            "(common/units.hpp) and name accordingly "
                            "(_s, _j, _w, _v, _f, _a, _hz, _c, _cm2)");
                }
            }
        }
    }
}

/// Expected include guard for \p rel_path: CHRYSALIS_ + the upper-cased
/// path with a leading src/ stripped and separators mapped to '_',
/// e.g. src/core/campaign.hpp -> CHRYSALIS_CORE_CAMPAIGN_HPP.
std::string
expected_guard(const std::string& rel_path)
{
    std::string trimmed = rel_path;
    if (starts_with(trimmed, "src/"))
        trimmed = trimmed.substr(4);
    std::string guard = "CHRYSALIS_";
    for (const char c : trimmed) {
        guard += std::isalnum(static_cast<unsigned char>(c))
                     ? static_cast<char>(
                           std::toupper(static_cast<unsigned char>(c)))
                     : '_';
    }
    return guard;
}

void
check_header_guard(std::vector<Violation>& out, const FileView& view)
{
    if (!view.is_header())
        return;
    const std::string guard = expected_guard(view.path);
    static const std::regex pragma_once(R"(^\s*#\s*pragma\s+once\b)");
    static const std::regex ifndef(R"(^\s*#\s*ifndef\s+(\w+))");
    static const std::regex define(R"(^\s*#\s*define\s+(\w+))");

    for (std::size_t i = 0; i < view.code.size(); ++i) {
        const std::string& line = view.code[i];
        if (trim_copy(line).empty())
            continue;
        std::smatch match;
        if (std::regex_search(line, match, pragma_once)) {
            add(out, view, static_cast<int>(i) + 1, kRuleHeaderGuard,
                "project headers use include guards, not #pragma once; "
                "expected guard '" + guard + "'");
            return;
        }
        if (!std::regex_search(line, match, ifndef)) {
            add(out, view, static_cast<int>(i) + 1, kRuleHeaderGuard,
                "header must open with '#ifndef " + guard +
                    "' before any code");
            return;
        }
        if (match[1].str() != guard) {
            add(out, view, static_cast<int>(i) + 1, kRuleHeaderGuard,
                "include guard '" + match[1].str() +
                    "' does not match the path-derived name '" + guard +
                    "'");
            return;
        }
        // #define must follow on the next non-blank code line.
        for (std::size_t j = i + 1; j < view.code.size(); ++j) {
            if (trim_copy(view.code[j]).empty())
                continue;
            if (!std::regex_search(view.code[j], match, define) ||
                match[1].str() != guard) {
                add(out, view, static_cast<int>(j) + 1, kRuleHeaderGuard,
                    "'#ifndef " + guard +
                        "' must be followed by '#define " + guard + "'");
            }
            return;
        }
        add(out, view, static_cast<int>(i) + 1, kRuleHeaderGuard,
            "'#ifndef " + guard + "' has no matching '#define'");
        return;
    }
    if (!view.code.empty()) {
        add(out, view, 1, kRuleHeaderGuard,
            "header is missing include guard '" + guard + "'");
    }
}

void
check_raw_lock(std::vector<Violation>& out, const FileView& view)
{
    if (starts_with(view.path, kRawLockExemptPrefix))
        return;
    // Member calls only: `m.lock()` / `m->unlock()` with no arguments.
    // `std::lock_guard` / `MutexLock` declarations never match (no
    // preceding member access), and `cv.wait(lock)` takes arguments.
    static const std::regex pattern(
        R"((\.|->)\s*(unlock|try_lock|lock)\s*\(\s*\))");
    match_lines(out, view, pattern, kRuleRawLock,
                [](const std::smatch& m) {
                    return "raw mutex ." + m[2].str() +
                           "() call; hold locks through RAII "
                           "(chrysalis::MutexLock, std::lock_guard) so "
                           "no exit path can leak the capability";
                });
}

void
check_includes(std::vector<Violation>& out, const FileView& view)
{
    static const std::regex include(
        R"(^\s*#\s*include\s*[<"]([^>"]+)[>"])");
    for (std::size_t i = 0; i < view.raw.size(); ++i) {
        std::smatch match;
        if (!std::regex_search(view.raw[i], match, include))
            continue;
        const std::string header = match[1].str();
        const int line = static_cast<int>(i) + 1;
        for (const BannedHeader& banned : kBannedHeaders) {
            if (header == banned.name) {
                add(out, view, line, kRuleInclude,
                    "banned header <" + header + ">; " + banned.message);
            }
        }
        if ((header == "time.h" || header == "ctime") &&
            !starts_with(view.path, kClockAllowedPrefix)) {
            add(out, view, line, kRuleInclude,
                "banned header <" + header +
                    "> outside src/obs/; wall-clock time may not feed "
                    "deterministic code paths");
        }
        if (header == "random" &&
            !starts_with(view.path, "src/common/rng")) {
            add(out, view, line, kRuleInclude,
                "banned header <random>; all randomness flows through "
                "the seeded chrysalis::Rng (common/rng.hpp)");
        }
        if (!starts_with(view.path, kNetworkAllowedPrefix)) {
            for (const char* network : kNetworkHeaders) {
                if (header == network) {
                    add(out, view, line, kRuleInclude,
                        "network/fd header <" + header +
                            "> outside src/serve/; sockets and raw file "
                            "descriptors live in the serving layer only");
                }
            }
        }
        if (header == "iostream" && view.is_header()) {
            add(out, view, line, kRuleInclude,
                "<iostream> in a header injects static initializers "
                "into every includer; include <iosfwd> and take streams "
                "by reference");
        }
    }
}

}  // namespace

const std::vector<RuleInfo>&
rules()
{
    static const std::vector<RuleInfo> registry = {
        {kRuleRand,
         "no rand()/srand()/std::random_device/random_shuffle; "
         "randomness must come from a seeded chrysalis::Rng"},
        {kRuleClock,
         "no system_clock anywhere; steady/high_resolution clocks only "
         "inside src/obs/"},
        {kRuleGetenv,
         "getenv() only in the designated env-knob modules (logging, "
         "bench_util)"},
        {kRuleUnorderedIter,
         "no iteration over std::unordered_{map,set} (unspecified order "
         "feeding reports or hashes); sort first"},
        {kRuleFloatFormat,
         "journal/report code must format doubles via "
         "format_double_17g(), not raw printf conversions"},
        {kRuleUnitSuffix,
         "double members/params must use SI base units; non-SI "
         "suffixes (_ms, _uf, ...) are banned"},
        {kRuleHeaderGuard,
         "headers carry path-derived CHRYSALIS_*_HPP include guards "
         "(no #pragma once)"},
        {kRuleInclude,
         "banned headers: C-compat headers, <random>, <time.h>/<ctime> "
         "outside src/obs/, network/fd headers outside src/serve/, "
         "<iostream> in headers"},
        {kRuleRawLock,
         "no raw .lock()/.unlock()/.try_lock() member calls outside "
         "common/mutex; hold locks through RAII guards"},
        {kRuleNolint,
         "NOLINT comments must name known rules and give a "
         "justification"},
        {kRuleLayering,
         "(--graph) include edges must follow the module layering "
         "spec: strictly lower layers only, nothing includes "
         "tests/bench/tools"},
        {kRuleCycle,
         "(--graph) no include cycles between files (strongly "
         "connected components of the include graph)"},
        {kRuleOrphan,
         "(--graph) every header must be reachable from some "
         "translation unit in the scanned tree"},
    };
    return registry;
}

std::vector<Violation>
scan_source(const std::string& rel_path, const std::string& content)
{
    const FileView view = tokenize(rel_path, content);
    const Suppressions suppressions = parse_suppressions(view);

    std::vector<Violation> raw;
    check_rand(raw, view);
    check_clock(raw, view);
    check_getenv(raw, view);
    check_unordered_iteration(raw, view);
    check_float_format(raw, view);
    check_unit_suffix(raw, view);
    check_header_guard(raw, view);
    check_includes(raw, view);
    check_raw_lock(raw, view);

    std::vector<Violation> kept;
    for (Violation& violation : raw) {
        if (!suppressions.covers(violation.rule, violation.line))
            kept.push_back(std::move(violation));
    }
    kept.insert(kept.end(), suppressions.malformed.begin(),
                suppressions.malformed.end());
    std::sort(kept.begin(), kept.end(),
              [](const Violation& a, const Violation& b) {
                  return std::tie(a.line, a.rule, a.message) <
                         std::tie(b.line, b.rule, b.message);
              });
    return kept;
}

std::string
baseline_key(const Violation& violation)
{
    return violation.file + "|" + violation.rule + "|" + violation.source;
}

std::vector<Violation>
apply_baseline(std::vector<Violation> violations,
               const std::vector<std::string>& baseline_keys)
{
    std::multiset<std::string> pool(baseline_keys.begin(),
                                    baseline_keys.end());
    std::vector<Violation> kept;
    for (Violation& violation : violations) {
        const auto it = pool.find(baseline_key(violation));
        if (it != pool.end())
            pool.erase(it);
        else
            kept.push_back(std::move(violation));
    }
    return kept;
}

}  // namespace chrysalis::lint

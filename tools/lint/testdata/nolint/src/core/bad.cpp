// Fixture: malformed suppressions fire chrysalis-nolint and do NOT
// silence the underlying rule.
#include <cstdlib>

const char*
sloppy_suppressions()
{
    const char* a = std::getenv("A");  // NOLINT(): no rules listed
    const char* b = std::getenv("B");  // NOLINT(chrysalis-getenv) missing justification
    const char* c = std::getenv("C");  // NOLINT(chrysalis-nonsense): unknown rule id
    // A foreign tool's directive is ignored outright: it neither
    // suppresses chrysalis rules nor counts as malformed.
    const char* d = std::getenv("D");  // NOLINT(concurrency-mt-unsafe)
    // Mixed list: only the chrysalis entry is validated and applied.
    const char* e = std::getenv("E");  // NOLINT(concurrency-mt-unsafe,chrysalis-getenv): waived for the fixture
    (void)a;
    (void)b;
    (void)d;
    (void)e;
    return c;
}

// Fixture: malformed suppressions fire chrysalis-nolint and do NOT
// silence the underlying rule.
#include <cstdlib>

const char*
sloppy_suppressions()
{
    const char* a = std::getenv("A");  // NOLINT(): no rules listed
    const char* b = std::getenv("B");  // NOLINT(chrysalis-getenv) missing justification
    const char* c = std::getenv("C");  // NOLINT(chrysalis-nonsense): unknown rule id
    (void)a;
    (void)b;
    return c;
}

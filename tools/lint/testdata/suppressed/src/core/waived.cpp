// Fixture: well-formed NOLINT / NOLINTNEXTLINE suppressions with rule
// lists and justifications silence the named rule — this whole file
// must scan clean (exit 0).
#include <chrono>
#include <cstdlib>

double
timed_section()
{
    // NOLINTNEXTLINE(chrysalis-clock): fixture exercising suppression
    const auto start = std::chrono::steady_clock::now();
    const char* knob = std::getenv("FIXTURE_KNOB");  // NOLINT(chrysalis-getenv): fixture exercising same-line suppression
    (void)knob;
    return std::chrono::duration<double>(start.time_since_epoch()).count();
}

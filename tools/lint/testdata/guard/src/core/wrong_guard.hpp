// Fixture: guard name not derived from the path fires
// chrysalis-header-guard.

#ifndef SOME_OTHER_GUARD_HPP
#define SOME_OTHER_GUARD_HPP

int wrong();

#endif  // SOME_OTHER_GUARD_HPP

// Fixture: #pragma once fires chrysalis-header-guard (the project uses
// path-derived include guards).

#pragma once

int pragma_once_header();

// Fixture: correct path-derived guard (src/ stripped, upper-cased) is
// clean.

#ifndef CHRYSALIS_CORE_GOOD_HPP
#define CHRYSALIS_CORE_GOOD_HPP

int guarded();

#endif  // CHRYSALIS_CORE_GOOD_HPP

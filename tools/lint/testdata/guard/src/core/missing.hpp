// Fixture: a header with no guard at all fires chrysalis-header-guard
// at its first code line.

int unguarded();

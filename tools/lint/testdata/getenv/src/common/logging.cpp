// Fixture: src/common/logging.cpp is the designated log-level env knob;
// getenv is allowlisted here and must not fire.
#include <cstdlib>

const char*
log_level_from_env()
{
    return std::getenv("CHRYSALIS_LOG_LEVEL");
}

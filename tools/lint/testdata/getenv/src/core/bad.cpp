// Fixture: getenv outside the env-knob allowlist fires chrysalis-getenv.
#include <cstdlib>

const char*
seed_from_env()
{
    return std::getenv("MY_SEED");
}

// Fixture: raw mutex manipulation the chrysalis-raw-lock rule bans.
#include <mutex>

std::mutex g_mutex;
int g_value = 0;

void
leaky_update(int next)
{
    g_mutex.lock();
    g_value = next;  // an exception here leaks the capability
    g_mutex.unlock();
}

bool
try_update(int next)
{
    if (!g_mutex.try_lock())
        return false;
    g_value = next;
    g_mutex.unlock();
    return true;
}

void
raii_update(int next)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_value = next;
}

void
waived_handoff()
{
    // Lock handoff across a C callback boundary; RAII cannot span it.
    // NOLINTNEXTLINE(chrysalis-raw-lock): capability crosses a C callback
    g_mutex.lock();
}

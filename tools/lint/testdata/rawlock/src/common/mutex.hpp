// Fixture twin of src/common/mutex.hpp: the one place allowed to call
// the raw primitives, because it is the annotated wrapper itself.
#ifndef CHRYSALIS_COMMON_MUTEX_HPP
#define CHRYSALIS_COMMON_MUTEX_HPP

#include <mutex>

class Mutex
{
  public:
    void lock() { mutex_.lock(); }
    void unlock() { mutex_.unlock(); }

  private:
    std::mutex mutex_;
};

#endif  // CHRYSALIS_COMMON_MUTEX_HPP

// Fixture: non-SI unit suffixes on floating-point declarations fire
// chrysalis-unit-suffix; SI suffixes and dimensionless names are clean.

#ifndef CHRYSALIS_ENERGY_BAD_HPP
#define CHRYSALIS_ENERGY_BAD_HPP

struct ChargeProfile {
    double capacitance_uf = 100.0;
    double latency_ms = 3.0;
    double capacitance_f = 100e-6;  // SI: clean
    double latency_s = 3e-3;        // SI: clean
    double efficiency = 0.85;       // dimensionless: clean
};

double charge_time(double capacitance_f, float budget_mj);

#endif  // CHRYSALIS_ENERGY_BAD_HPP

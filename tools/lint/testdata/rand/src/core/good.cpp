// Fixture: seeded Rng use, a "rand()" inside a string, and identifiers
// that merely contain the substring must all stay clean.
#include "common/rng.hpp"

double
sample(chrysalis::Rng& rng)
{
    const char* note = "calling rand() here would be a bug";
    (void)note;
    double operand = rng.uniform();  // 'rand' inside a word is fine
    return operand;
}

// Fixture: every banned randomness source must fire chrysalis-rand.
#include <cstdlib>

int
entropy()
{
    std::srand(42);
    int total = std::rand();
    std::random_device device;  // hypothetical; fixture is not compiled
    total += static_cast<int>(device());
    return total;
}

#ifndef FIXTURE_CORE_DEAD_HPP
#define FIXTURE_CORE_DEAD_HPP

inline int dead() { return 0; }

#endif  // FIXTURE_CORE_DEAD_HPP

#include "core/used.hpp"

int main() { return used(); }

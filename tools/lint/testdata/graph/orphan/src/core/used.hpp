#ifndef FIXTURE_CORE_USED_HPP
#define FIXTURE_CORE_USED_HPP

inline int used() { return 1; }

#endif  // FIXTURE_CORE_USED_HPP

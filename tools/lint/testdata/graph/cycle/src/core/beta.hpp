#ifndef FIXTURE_CORE_BETA_HPP
#define FIXTURE_CORE_BETA_HPP

#include "core/alpha.hpp"

inline int beta_value = 7;

#endif  // FIXTURE_CORE_BETA_HPP

#include "core/alpha.hpp"

int main() { return alpha(); }

#ifndef FIXTURE_CORE_ALPHA_HPP
#define FIXTURE_CORE_ALPHA_HPP

#include "core/beta.hpp"

inline int alpha() { return beta_value; }

#endif  // FIXTURE_CORE_ALPHA_HPP

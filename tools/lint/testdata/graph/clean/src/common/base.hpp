#ifndef FIXTURE_COMMON_BASE_HPP
#define FIXTURE_COMMON_BASE_HPP

inline int base() { return 3; }

#endif  // FIXTURE_COMMON_BASE_HPP

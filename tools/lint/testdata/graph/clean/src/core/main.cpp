#include "core/engine.hpp"

int main() { return engine(); }

#ifndef FIXTURE_CORE_ENGINE_HPP
#define FIXTURE_CORE_ENGINE_HPP

#include "common/base.hpp"

inline int engine() { return base(); }

#endif  // FIXTURE_CORE_ENGINE_HPP

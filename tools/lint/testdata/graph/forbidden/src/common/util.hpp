// Fixture: a low-layer header reaching up into core.
#ifndef FIXTURE_COMMON_UTIL_HPP
#define FIXTURE_COMMON_UTIL_HPP

#include "core/engine.hpp"

inline int util() { return engine(); }

#endif  // FIXTURE_COMMON_UTIL_HPP

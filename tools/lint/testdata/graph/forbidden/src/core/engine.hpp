#ifndef FIXTURE_CORE_ENGINE_HPP
#define FIXTURE_CORE_ENGINE_HPP

inline int engine() { return 42; }

#endif  // FIXTURE_CORE_ENGINE_HPP

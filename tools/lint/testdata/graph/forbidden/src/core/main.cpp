#include "common/util.hpp"

int main() { return util(); }

// Fixture: network/fd headers outside src/serve/ fire
// chrysalis-include.
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

int
core_code_may_not_open_sockets()
{
    return 0;
}

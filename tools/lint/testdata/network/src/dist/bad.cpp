// Fixture: src/dist/ is deliberately NOT in the network allowlist.
// The distributed coordinator speaks serve::Client only; a raw socket
// (or any fd plumbing) appearing in the dist layer is a layering
// violation the linter must catch.
#include <sys/socket.h>
#include <unistd.h>

int
dist_code_may_not_open_sockets()
{
    return 0;
}

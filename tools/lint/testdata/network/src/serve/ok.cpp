// Fixture: the full network/fd header set is permitted inside
// src/serve/ — the serving layer owns sockets and raw descriptors.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

int
serving_layer_may_use_sockets()
{
    return 0;
}

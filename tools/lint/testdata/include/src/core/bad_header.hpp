// Fixture: <iostream> in a header fires chrysalis-include (<iosfwd> is
// the sanctioned forward declaration).

#ifndef CHRYSALIS_CORE_BAD_HEADER_HPP
#define CHRYSALIS_CORE_BAD_HEADER_HPP

#include <iostream>

void print_all(std::ostream& output);

#endif  // CHRYSALIS_CORE_BAD_HEADER_HPP

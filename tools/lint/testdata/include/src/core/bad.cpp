// Fixture: C-compat headers, <random>, and <ctime> outside src/obs/
// fire chrysalis-include.
#include <ctime>
#include <random>
#include <stdio.h>
#include <stdlib.h>

int
uses_banned_headers()
{
    return 0;
}

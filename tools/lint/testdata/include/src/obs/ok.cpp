// Fixture: <time.h> inside src/obs/ is allowed (thread CPU-time
// clocks); <cstdio> is always fine.
#include <cstdio>
#include <time.h>

int
obs_clock_header_ok()
{
    return 0;
}

// Fixture: monotonic clocks outside src/obs/ and wall clocks anywhere
// must fire chrysalis-clock; the <chrono> include itself is fine.
#include <chrono>

double
now_pair()
{
    const auto mono = std::chrono::steady_clock::now();
    const auto wall = std::chrono::system_clock::now();
    return std::chrono::duration<double>(mono.time_since_epoch()).count() +
           std::chrono::duration<double>(wall.time_since_epoch()).count();
}

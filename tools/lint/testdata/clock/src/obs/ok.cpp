// Fixture: src/obs/ owns monotonic timing; steady_clock is legal here
// (system_clock still is not — it appears nowhere in this file).
#include <chrono>

double
monotonic_seconds()
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}

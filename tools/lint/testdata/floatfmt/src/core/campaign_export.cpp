// Fixture: a raw printf float conversion in a journal/report path
// (src/core/campaign*) fires chrysalis-float-format; integer and hex
// conversions do not.
#include <cstdio>

void
emit(double score, int attempts)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", score);
    std::snprintf(buffer, sizeof buffer, "%f", score);
    std::snprintf(buffer, sizeof buffer, "%d %08x", attempts,
                  static_cast<unsigned>(attempts));
}

// Fixture: src/common/string_utils.cpp is the formatting-helper home;
// the sanctioned "%.17g" implementation lives here without firing.
#include <cstdio>

const char*
format_double_17g_impl(double value, char (&buffer)[64])
{
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

// Fixture: range-for and iterator loops over unordered containers fire
// chrysalis-unordered-iter.
#include <string>
#include <unordered_map>
#include <unordered_set>

int
emit(const std::unordered_map<std::string, int>& scores)
{
    std::unordered_set<int> seen;
    int total = 0;
    for (const auto& [name, value] : scores)
        total += static_cast<int>(name.size()) + value;
    for (auto it = seen.begin(); it != seen.end(); ++it)
        total += *it;
    return total;
}

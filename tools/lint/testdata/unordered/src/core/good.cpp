// Fixture: point lookups into unordered containers and iteration over
// ordered ones are fine.
#include <map>
#include <string>
#include <unordered_map>

int
lookup(const std::unordered_map<std::string, int>& scores,
       const std::map<std::string, int>& ranking)
{
    int total = 0;
    const auto it = scores.find("alpha");
    if (it != scores.end())
        total += it->second;
    for (const auto& [name, value] : ranking)
        total += static_cast<int>(name.size()) + value;
    return total;
}

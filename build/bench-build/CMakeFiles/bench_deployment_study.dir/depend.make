# Empty dependencies file for bench_deployment_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_deployment_study"
  "../bench/bench_deployment_study.pdb"
  "CMakeFiles/bench_deployment_study.dir/bench_deployment_study.cpp.o"
  "CMakeFiles/bench_deployment_study.dir/bench_deployment_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deployment_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig9_capacitor_sweep"
  "../bench/bench_fig9_capacitor_sweep.pdb"
  "CMakeFiles/bench_fig9_capacitor_sweep.dir/bench_fig9_capacitor_sweep.cpp.o"
  "CMakeFiles/bench_fig9_capacitor_sweep.dir/bench_fig9_capacitor_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_capacitor_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig6_msp_pareto"
  "../bench/bench_fig6_msp_pareto.pdb"
  "CMakeFiles/bench_fig6_msp_pareto.dir/bench_fig6_msp_pareto.cpp.o"
  "CMakeFiles/bench_fig6_msp_pareto.dir/bench_fig6_msp_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_msp_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

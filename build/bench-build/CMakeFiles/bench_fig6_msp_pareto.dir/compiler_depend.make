# Empty compiler generated dependencies file for bench_fig6_msp_pareto.
# This may be replaced when dependencies are built.

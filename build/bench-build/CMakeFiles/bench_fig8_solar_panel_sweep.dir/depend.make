# Empty dependencies file for bench_fig8_solar_panel_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table2_usage_model"
  "../bench/bench_table2_usage_model.pdb"
  "CMakeFiles/bench_table2_usage_model.dir/bench_table2_usage_model.cpp.o"
  "CMakeFiles/bench_table2_usage_model.dir/bench_table2_usage_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_usage_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

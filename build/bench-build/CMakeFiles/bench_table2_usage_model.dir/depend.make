# Empty dependencies file for bench_table2_usage_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig10_swap_design"
  "../bench/bench_fig10_swap_design.pdb"
  "CMakeFiles/bench_fig10_swap_design.dir/bench_fig10_swap_design.cpp.o"
  "CMakeFiles/bench_fig10_swap_design.dir/bench_fig10_swap_design.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_swap_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig10_swap_design.
# This may be replaced when dependencies are built.

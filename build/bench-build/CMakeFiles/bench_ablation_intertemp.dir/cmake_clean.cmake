file(REMOVE_RECURSE
  "../bench/bench_ablation_intertemp"
  "../bench/bench_ablation_intertemp.pdb"
  "CMakeFiles/bench_ablation_intertemp.dir/bench_ablation_intertemp.cpp.o"
  "CMakeFiles/bench_ablation_intertemp.dir/bench_ablation_intertemp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intertemp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_intertemp.
# This may be replaced when dependencies are built.

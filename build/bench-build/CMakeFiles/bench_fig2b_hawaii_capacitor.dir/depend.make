# Empty dependencies file for bench_fig2b_hawaii_capacitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig2b_hawaii_capacitor"
  "../bench/bench_fig2b_hawaii_capacitor.pdb"
  "CMakeFiles/bench_fig2b_hawaii_capacitor.dir/bench_fig2b_hawaii_capacitor.cpp.o"
  "CMakeFiles/bench_fig2b_hawaii_capacitor.dir/bench_fig2b_hawaii_capacitor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_hawaii_capacitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_bench_util.dir/common/bench_util.cpp.o"
  "CMakeFiles/chrysalis_bench_util.dir/common/bench_util.cpp.o.d"
  "libchrysalis_bench_util.a"
  "libchrysalis_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

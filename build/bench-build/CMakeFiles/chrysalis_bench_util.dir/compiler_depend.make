# Empty compiler generated dependencies file for chrysalis_bench_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchrysalis_bench_util.a"
)

file(REMOVE_RECURSE
  "../bench/bench_headline_improvement"
  "../bench/bench_headline_improvement.pdb"
  "CMakeFiles/bench_headline_improvement.dir/bench_headline_improvement.cpp.o"
  "CMakeFiles/bench_headline_improvement.dir/bench_headline_improvement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_headline_improvement.
# This may be replaced when dependencies are built.

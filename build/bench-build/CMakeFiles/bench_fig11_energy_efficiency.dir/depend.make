# Empty dependencies file for bench_fig11_energy_efficiency.
# This may be replaced when dependencies are built.

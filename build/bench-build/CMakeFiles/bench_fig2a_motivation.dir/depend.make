# Empty dependencies file for bench_fig2a_motivation.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_design_space.cpp" "bench-build/CMakeFiles/bench_table5_design_space.dir/bench_table5_design_space.cpp.o" "gcc" "bench-build/CMakeFiles/bench_table5_design_space.dir/bench_table5_design_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/chrysalis_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/chrysalis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/chrysalis_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chrysalis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/chrysalis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/chrysalis_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/chrysalis_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/chrysalis_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

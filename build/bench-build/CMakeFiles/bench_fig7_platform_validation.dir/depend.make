# Empty dependencies file for bench_fig7_platform_validation.
# This may be replaced when dependencies are built.

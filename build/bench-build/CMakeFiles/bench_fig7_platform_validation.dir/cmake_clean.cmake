file(REMOVE_RECURSE
  "../bench/bench_fig7_platform_validation"
  "../bench/bench_fig7_platform_validation.pdb"
  "CMakeFiles/bench_fig7_platform_validation.dir/bench_fig7_platform_validation.cpp.o"
  "CMakeFiles/bench_fig7_platform_validation.dir/bench_fig7_platform_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_platform_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_ablation_evaluator_fidelity"
  "../bench/bench_ablation_evaluator_fidelity.pdb"
  "CMakeFiles/bench_ablation_evaluator_fidelity.dir/bench_ablation_evaluator_fidelity.cpp.o"
  "CMakeFiles/bench_ablation_evaluator_fidelity.dir/bench_ablation_evaluator_fidelity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_evaluator_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_evaluator_fidelity.
# This may be replaced when dependencies are built.

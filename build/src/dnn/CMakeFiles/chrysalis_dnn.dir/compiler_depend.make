# Empty compiler generated dependencies file for chrysalis_dnn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchrysalis_dnn.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/layer.cpp" "src/dnn/CMakeFiles/chrysalis_dnn.dir/layer.cpp.o" "gcc" "src/dnn/CMakeFiles/chrysalis_dnn.dir/layer.cpp.o.d"
  "/root/repo/src/dnn/model.cpp" "src/dnn/CMakeFiles/chrysalis_dnn.dir/model.cpp.o" "gcc" "src/dnn/CMakeFiles/chrysalis_dnn.dir/model.cpp.o.d"
  "/root/repo/src/dnn/model_io.cpp" "src/dnn/CMakeFiles/chrysalis_dnn.dir/model_io.cpp.o" "gcc" "src/dnn/CMakeFiles/chrysalis_dnn.dir/model_io.cpp.o.d"
  "/root/repo/src/dnn/model_zoo.cpp" "src/dnn/CMakeFiles/chrysalis_dnn.dir/model_zoo.cpp.o" "gcc" "src/dnn/CMakeFiles/chrysalis_dnn.dir/model_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_dnn.dir/layer.cpp.o"
  "CMakeFiles/chrysalis_dnn.dir/layer.cpp.o.d"
  "CMakeFiles/chrysalis_dnn.dir/model.cpp.o"
  "CMakeFiles/chrysalis_dnn.dir/model.cpp.o.d"
  "CMakeFiles/chrysalis_dnn.dir/model_io.cpp.o"
  "CMakeFiles/chrysalis_dnn.dir/model_io.cpp.o.d"
  "CMakeFiles/chrysalis_dnn.dir/model_zoo.cpp.o"
  "CMakeFiles/chrysalis_dnn.dir/model_zoo.cpp.o.d"
  "libchrysalis_dnn.a"
  "libchrysalis_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

include("${CMAKE_CURRENT_LIST_DIR}/chrysalisTargets.cmake")

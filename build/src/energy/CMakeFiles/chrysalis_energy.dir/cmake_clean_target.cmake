file(REMOVE_RECURSE
  "libchrysalis_energy.a"
)

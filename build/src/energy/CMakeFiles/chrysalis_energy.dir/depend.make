# Empty dependencies file for chrysalis_energy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_energy.dir/capacitor.cpp.o"
  "CMakeFiles/chrysalis_energy.dir/capacitor.cpp.o.d"
  "CMakeFiles/chrysalis_energy.dir/energy_controller.cpp.o"
  "CMakeFiles/chrysalis_energy.dir/energy_controller.cpp.o.d"
  "CMakeFiles/chrysalis_energy.dir/harvester.cpp.o"
  "CMakeFiles/chrysalis_energy.dir/harvester.cpp.o.d"
  "CMakeFiles/chrysalis_energy.dir/power_management.cpp.o"
  "CMakeFiles/chrysalis_energy.dir/power_management.cpp.o.d"
  "CMakeFiles/chrysalis_energy.dir/pv_module.cpp.o"
  "CMakeFiles/chrysalis_energy.dir/pv_module.cpp.o.d"
  "CMakeFiles/chrysalis_energy.dir/solar_environment.cpp.o"
  "CMakeFiles/chrysalis_energy.dir/solar_environment.cpp.o.d"
  "CMakeFiles/chrysalis_energy.dir/trace_io.cpp.o"
  "CMakeFiles/chrysalis_energy.dir/trace_io.cpp.o.d"
  "libchrysalis_energy.a"
  "libchrysalis_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

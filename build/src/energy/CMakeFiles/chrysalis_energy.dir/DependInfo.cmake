
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/capacitor.cpp" "src/energy/CMakeFiles/chrysalis_energy.dir/capacitor.cpp.o" "gcc" "src/energy/CMakeFiles/chrysalis_energy.dir/capacitor.cpp.o.d"
  "/root/repo/src/energy/energy_controller.cpp" "src/energy/CMakeFiles/chrysalis_energy.dir/energy_controller.cpp.o" "gcc" "src/energy/CMakeFiles/chrysalis_energy.dir/energy_controller.cpp.o.d"
  "/root/repo/src/energy/harvester.cpp" "src/energy/CMakeFiles/chrysalis_energy.dir/harvester.cpp.o" "gcc" "src/energy/CMakeFiles/chrysalis_energy.dir/harvester.cpp.o.d"
  "/root/repo/src/energy/power_management.cpp" "src/energy/CMakeFiles/chrysalis_energy.dir/power_management.cpp.o" "gcc" "src/energy/CMakeFiles/chrysalis_energy.dir/power_management.cpp.o.d"
  "/root/repo/src/energy/pv_module.cpp" "src/energy/CMakeFiles/chrysalis_energy.dir/pv_module.cpp.o" "gcc" "src/energy/CMakeFiles/chrysalis_energy.dir/pv_module.cpp.o.d"
  "/root/repo/src/energy/solar_environment.cpp" "src/energy/CMakeFiles/chrysalis_energy.dir/solar_environment.cpp.o" "gcc" "src/energy/CMakeFiles/chrysalis_energy.dir/solar_environment.cpp.o.d"
  "/root/repo/src/energy/trace_io.cpp" "src/energy/CMakeFiles/chrysalis_energy.dir/trace_io.cpp.o" "gcc" "src/energy/CMakeFiles/chrysalis_energy.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

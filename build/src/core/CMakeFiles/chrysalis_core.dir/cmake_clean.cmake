file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_core.dir/campaign.cpp.o"
  "CMakeFiles/chrysalis_core.dir/campaign.cpp.o.d"
  "CMakeFiles/chrysalis_core.dir/chrysalis.cpp.o"
  "CMakeFiles/chrysalis_core.dir/chrysalis.cpp.o.d"
  "CMakeFiles/chrysalis_core.dir/deployment.cpp.o"
  "CMakeFiles/chrysalis_core.dir/deployment.cpp.o.d"
  "CMakeFiles/chrysalis_core.dir/scenarios.cpp.o"
  "CMakeFiles/chrysalis_core.dir/scenarios.cpp.o.d"
  "libchrysalis_core.a"
  "libchrysalis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for chrysalis_core.
# This may be replaced when dependencies are built.

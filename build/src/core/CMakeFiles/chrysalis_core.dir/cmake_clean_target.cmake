file(REMOVE_RECURSE
  "libchrysalis_core.a"
)

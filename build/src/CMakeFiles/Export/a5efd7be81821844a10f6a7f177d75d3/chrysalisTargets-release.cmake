#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "chrysalis::chrysalis_common" for configuration "Release"
set_property(TARGET chrysalis::chrysalis_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(chrysalis::chrysalis_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libchrysalis_common.a"
  )

list(APPEND _cmake_import_check_targets chrysalis::chrysalis_common )
list(APPEND _cmake_import_check_files_for_chrysalis::chrysalis_common "${_IMPORT_PREFIX}/lib/libchrysalis_common.a" )

# Import target "chrysalis::chrysalis_energy" for configuration "Release"
set_property(TARGET chrysalis::chrysalis_energy APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(chrysalis::chrysalis_energy PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libchrysalis_energy.a"
  )

list(APPEND _cmake_import_check_targets chrysalis::chrysalis_energy )
list(APPEND _cmake_import_check_files_for_chrysalis::chrysalis_energy "${_IMPORT_PREFIX}/lib/libchrysalis_energy.a" )

# Import target "chrysalis::chrysalis_dnn" for configuration "Release"
set_property(TARGET chrysalis::chrysalis_dnn APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(chrysalis::chrysalis_dnn PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libchrysalis_dnn.a"
  )

list(APPEND _cmake_import_check_targets chrysalis::chrysalis_dnn )
list(APPEND _cmake_import_check_files_for_chrysalis::chrysalis_dnn "${_IMPORT_PREFIX}/lib/libchrysalis_dnn.a" )

# Import target "chrysalis::chrysalis_dataflow" for configuration "Release"
set_property(TARGET chrysalis::chrysalis_dataflow APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(chrysalis::chrysalis_dataflow PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libchrysalis_dataflow.a"
  )

list(APPEND _cmake_import_check_targets chrysalis::chrysalis_dataflow )
list(APPEND _cmake_import_check_files_for_chrysalis::chrysalis_dataflow "${_IMPORT_PREFIX}/lib/libchrysalis_dataflow.a" )

# Import target "chrysalis::chrysalis_hw" for configuration "Release"
set_property(TARGET chrysalis::chrysalis_hw APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(chrysalis::chrysalis_hw PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libchrysalis_hw.a"
  )

list(APPEND _cmake_import_check_targets chrysalis::chrysalis_hw )
list(APPEND _cmake_import_check_files_for_chrysalis::chrysalis_hw "${_IMPORT_PREFIX}/lib/libchrysalis_hw.a" )

# Import target "chrysalis::chrysalis_sim" for configuration "Release"
set_property(TARGET chrysalis::chrysalis_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(chrysalis::chrysalis_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libchrysalis_sim.a"
  )

list(APPEND _cmake_import_check_targets chrysalis::chrysalis_sim )
list(APPEND _cmake_import_check_files_for_chrysalis::chrysalis_sim "${_IMPORT_PREFIX}/lib/libchrysalis_sim.a" )

# Import target "chrysalis::chrysalis_search" for configuration "Release"
set_property(TARGET chrysalis::chrysalis_search APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(chrysalis::chrysalis_search PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libchrysalis_search.a"
  )

list(APPEND _cmake_import_check_targets chrysalis::chrysalis_search )
list(APPEND _cmake_import_check_files_for_chrysalis::chrysalis_search "${_IMPORT_PREFIX}/lib/libchrysalis_search.a" )

# Import target "chrysalis::chrysalis_core" for configuration "Release"
set_property(TARGET chrysalis::chrysalis_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(chrysalis::chrysalis_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libchrysalis_core.a"
  )

list(APPEND _cmake_import_check_targets chrysalis::chrysalis_core )
list(APPEND _cmake_import_check_files_for_chrysalis::chrysalis_core "${_IMPORT_PREFIX}/lib/libchrysalis_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)

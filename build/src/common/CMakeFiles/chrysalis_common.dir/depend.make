# Empty dependencies file for chrysalis_common.
# This may be replaced when dependencies are built.

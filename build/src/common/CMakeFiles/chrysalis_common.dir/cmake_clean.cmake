file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_common.dir/logging.cpp.o"
  "CMakeFiles/chrysalis_common.dir/logging.cpp.o.d"
  "CMakeFiles/chrysalis_common.dir/math_utils.cpp.o"
  "CMakeFiles/chrysalis_common.dir/math_utils.cpp.o.d"
  "CMakeFiles/chrysalis_common.dir/rng.cpp.o"
  "CMakeFiles/chrysalis_common.dir/rng.cpp.o.d"
  "CMakeFiles/chrysalis_common.dir/string_utils.cpp.o"
  "CMakeFiles/chrysalis_common.dir/string_utils.cpp.o.d"
  "CMakeFiles/chrysalis_common.dir/table.cpp.o"
  "CMakeFiles/chrysalis_common.dir/table.cpp.o.d"
  "libchrysalis_common.a"
  "libchrysalis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libchrysalis_common.a"
)

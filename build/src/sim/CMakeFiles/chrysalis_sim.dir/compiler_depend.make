# Empty compiler generated dependencies file for chrysalis_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchrysalis_sim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analytic_evaluator.cpp" "src/sim/CMakeFiles/chrysalis_sim.dir/analytic_evaluator.cpp.o" "gcc" "src/sim/CMakeFiles/chrysalis_sim.dir/analytic_evaluator.cpp.o.d"
  "/root/repo/src/sim/intermittent_simulator.cpp" "src/sim/CMakeFiles/chrysalis_sim.dir/intermittent_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/chrysalis_sim.dir/intermittent_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/chrysalis_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/chrysalis_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/chrysalis_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_sim.dir/analytic_evaluator.cpp.o"
  "CMakeFiles/chrysalis_sim.dir/analytic_evaluator.cpp.o.d"
  "CMakeFiles/chrysalis_sim.dir/intermittent_simulator.cpp.o"
  "CMakeFiles/chrysalis_sim.dir/intermittent_simulator.cpp.o.d"
  "libchrysalis_sim.a"
  "libchrysalis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

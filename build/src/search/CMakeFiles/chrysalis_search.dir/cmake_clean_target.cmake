file(REMOVE_RECURSE
  "libchrysalis_search.a"
)

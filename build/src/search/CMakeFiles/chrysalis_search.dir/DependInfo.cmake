
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/bilevel_explorer.cpp" "src/search/CMakeFiles/chrysalis_search.dir/bilevel_explorer.cpp.o" "gcc" "src/search/CMakeFiles/chrysalis_search.dir/bilevel_explorer.cpp.o.d"
  "/root/repo/src/search/design_space.cpp" "src/search/CMakeFiles/chrysalis_search.dir/design_space.cpp.o" "gcc" "src/search/CMakeFiles/chrysalis_search.dir/design_space.cpp.o.d"
  "/root/repo/src/search/mapping_search.cpp" "src/search/CMakeFiles/chrysalis_search.dir/mapping_search.cpp.o" "gcc" "src/search/CMakeFiles/chrysalis_search.dir/mapping_search.cpp.o.d"
  "/root/repo/src/search/nsga2.cpp" "src/search/CMakeFiles/chrysalis_search.dir/nsga2.cpp.o" "gcc" "src/search/CMakeFiles/chrysalis_search.dir/nsga2.cpp.o.d"
  "/root/repo/src/search/objective.cpp" "src/search/CMakeFiles/chrysalis_search.dir/objective.cpp.o" "gcc" "src/search/CMakeFiles/chrysalis_search.dir/objective.cpp.o.d"
  "/root/repo/src/search/optimizer.cpp" "src/search/CMakeFiles/chrysalis_search.dir/optimizer.cpp.o" "gcc" "src/search/CMakeFiles/chrysalis_search.dir/optimizer.cpp.o.d"
  "/root/repo/src/search/pareto.cpp" "src/search/CMakeFiles/chrysalis_search.dir/pareto.cpp.o" "gcc" "src/search/CMakeFiles/chrysalis_search.dir/pareto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/chrysalis_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/chrysalis_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/chrysalis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chrysalis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/chrysalis_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

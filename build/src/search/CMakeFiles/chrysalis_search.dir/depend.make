# Empty dependencies file for chrysalis_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_search.dir/bilevel_explorer.cpp.o"
  "CMakeFiles/chrysalis_search.dir/bilevel_explorer.cpp.o.d"
  "CMakeFiles/chrysalis_search.dir/design_space.cpp.o"
  "CMakeFiles/chrysalis_search.dir/design_space.cpp.o.d"
  "CMakeFiles/chrysalis_search.dir/mapping_search.cpp.o"
  "CMakeFiles/chrysalis_search.dir/mapping_search.cpp.o.d"
  "CMakeFiles/chrysalis_search.dir/nsga2.cpp.o"
  "CMakeFiles/chrysalis_search.dir/nsga2.cpp.o.d"
  "CMakeFiles/chrysalis_search.dir/objective.cpp.o"
  "CMakeFiles/chrysalis_search.dir/objective.cpp.o.d"
  "CMakeFiles/chrysalis_search.dir/optimizer.cpp.o"
  "CMakeFiles/chrysalis_search.dir/optimizer.cpp.o.d"
  "CMakeFiles/chrysalis_search.dir/pareto.cpp.o"
  "CMakeFiles/chrysalis_search.dir/pareto.cpp.o.d"
  "libchrysalis_search.a"
  "libchrysalis_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for chrysalis_dataflow.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/cost_model.cpp" "src/dataflow/CMakeFiles/chrysalis_dataflow.dir/cost_model.cpp.o" "gcc" "src/dataflow/CMakeFiles/chrysalis_dataflow.dir/cost_model.cpp.o.d"
  "/root/repo/src/dataflow/mapping.cpp" "src/dataflow/CMakeFiles/chrysalis_dataflow.dir/mapping.cpp.o" "gcc" "src/dataflow/CMakeFiles/chrysalis_dataflow.dir/mapping.cpp.o.d"
  "/root/repo/src/dataflow/tiling.cpp" "src/dataflow/CMakeFiles/chrysalis_dataflow.dir/tiling.cpp.o" "gcc" "src/dataflow/CMakeFiles/chrysalis_dataflow.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/chrysalis_dnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

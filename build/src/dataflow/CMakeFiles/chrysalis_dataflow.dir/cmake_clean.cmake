file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_dataflow.dir/cost_model.cpp.o"
  "CMakeFiles/chrysalis_dataflow.dir/cost_model.cpp.o.d"
  "CMakeFiles/chrysalis_dataflow.dir/mapping.cpp.o"
  "CMakeFiles/chrysalis_dataflow.dir/mapping.cpp.o.d"
  "CMakeFiles/chrysalis_dataflow.dir/tiling.cpp.o"
  "CMakeFiles/chrysalis_dataflow.dir/tiling.cpp.o.d"
  "libchrysalis_dataflow.a"
  "libchrysalis_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

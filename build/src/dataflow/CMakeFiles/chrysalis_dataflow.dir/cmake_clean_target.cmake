file(REMOVE_RECURSE
  "libchrysalis_dataflow.a"
)

# Empty dependencies file for chrysalis_hw.
# This may be replaced when dependencies are built.

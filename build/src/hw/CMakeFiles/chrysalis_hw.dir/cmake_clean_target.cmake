file(REMOVE_RECURSE
  "libchrysalis_hw.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_hw.dir/accelerator.cpp.o"
  "CMakeFiles/chrysalis_hw.dir/accelerator.cpp.o.d"
  "CMakeFiles/chrysalis_hw.dir/custom_hardware.cpp.o"
  "CMakeFiles/chrysalis_hw.dir/custom_hardware.cpp.o.d"
  "CMakeFiles/chrysalis_hw.dir/inference_hardware.cpp.o"
  "CMakeFiles/chrysalis_hw.dir/inference_hardware.cpp.o.d"
  "CMakeFiles/chrysalis_hw.dir/msp430_lea.cpp.o"
  "CMakeFiles/chrysalis_hw.dir/msp430_lea.cpp.o.d"
  "libchrysalis_hw.a"
  "libchrysalis_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accelerator.cpp" "src/hw/CMakeFiles/chrysalis_hw.dir/accelerator.cpp.o" "gcc" "src/hw/CMakeFiles/chrysalis_hw.dir/accelerator.cpp.o.d"
  "/root/repo/src/hw/custom_hardware.cpp" "src/hw/CMakeFiles/chrysalis_hw.dir/custom_hardware.cpp.o" "gcc" "src/hw/CMakeFiles/chrysalis_hw.dir/custom_hardware.cpp.o.d"
  "/root/repo/src/hw/inference_hardware.cpp" "src/hw/CMakeFiles/chrysalis_hw.dir/inference_hardware.cpp.o" "gcc" "src/hw/CMakeFiles/chrysalis_hw.dir/inference_hardware.cpp.o.d"
  "/root/repo/src/hw/msp430_lea.cpp" "src/hw/CMakeFiles/chrysalis_hw.dir/msp430_lea.cpp.o" "gcc" "src/hw/CMakeFiles/chrysalis_hw.dir/msp430_lea.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/chrysalis_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/chrysalis_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

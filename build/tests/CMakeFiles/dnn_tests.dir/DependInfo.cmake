
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dnn/layer_test.cpp" "tests/CMakeFiles/dnn_tests.dir/dnn/layer_test.cpp.o" "gcc" "tests/CMakeFiles/dnn_tests.dir/dnn/layer_test.cpp.o.d"
  "/root/repo/tests/dnn/model_io_test.cpp" "tests/CMakeFiles/dnn_tests.dir/dnn/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/dnn_tests.dir/dnn/model_io_test.cpp.o.d"
  "/root/repo/tests/dnn/model_test.cpp" "tests/CMakeFiles/dnn_tests.dir/dnn/model_test.cpp.o" "gcc" "tests/CMakeFiles/dnn_tests.dir/dnn/model_test.cpp.o.d"
  "/root/repo/tests/dnn/model_zoo_test.cpp" "tests/CMakeFiles/dnn_tests.dir/dnn/model_zoo_test.cpp.o" "gcc" "tests/CMakeFiles/dnn_tests.dir/dnn/model_zoo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chrysalis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/chrysalis_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chrysalis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/chrysalis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/chrysalis_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/chrysalis_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/chrysalis_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

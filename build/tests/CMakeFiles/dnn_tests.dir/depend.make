# Empty dependencies file for dnn_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dnn_tests.dir/dnn/layer_test.cpp.o"
  "CMakeFiles/dnn_tests.dir/dnn/layer_test.cpp.o.d"
  "CMakeFiles/dnn_tests.dir/dnn/model_io_test.cpp.o"
  "CMakeFiles/dnn_tests.dir/dnn/model_io_test.cpp.o.d"
  "CMakeFiles/dnn_tests.dir/dnn/model_test.cpp.o"
  "CMakeFiles/dnn_tests.dir/dnn/model_test.cpp.o.d"
  "CMakeFiles/dnn_tests.dir/dnn/model_zoo_test.cpp.o"
  "CMakeFiles/dnn_tests.dir/dnn/model_zoo_test.cpp.o.d"
  "dnn_tests"
  "dnn_tests.pdb"
  "dnn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

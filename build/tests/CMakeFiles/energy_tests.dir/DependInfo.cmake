
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/energy/capacitor_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/capacitor_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/capacitor_test.cpp.o.d"
  "/root/repo/tests/energy/energy_controller_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/energy_controller_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/energy_controller_test.cpp.o.d"
  "/root/repo/tests/energy/harvester_ext_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/harvester_ext_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/harvester_ext_test.cpp.o.d"
  "/root/repo/tests/energy/harvester_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/harvester_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/harvester_test.cpp.o.d"
  "/root/repo/tests/energy/markov_weather_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/markov_weather_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/markov_weather_test.cpp.o.d"
  "/root/repo/tests/energy/power_management_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/power_management_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/power_management_test.cpp.o.d"
  "/root/repo/tests/energy/pv_module_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/pv_module_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/pv_module_test.cpp.o.d"
  "/root/repo/tests/energy/solar_environment_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/solar_environment_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/solar_environment_test.cpp.o.d"
  "/root/repo/tests/energy/trace_io_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/trace_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chrysalis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/chrysalis_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chrysalis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/chrysalis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/chrysalis_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/chrysalis_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/chrysalis_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chrysalis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

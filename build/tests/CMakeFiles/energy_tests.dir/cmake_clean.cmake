file(REMOVE_RECURSE
  "CMakeFiles/energy_tests.dir/energy/capacitor_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/capacitor_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/energy_controller_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/energy_controller_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/harvester_ext_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/harvester_ext_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/harvester_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/harvester_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/markov_weather_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/markov_weather_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/power_management_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/power_management_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/pv_module_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/pv_module_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/solar_environment_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/solar_environment_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/trace_io_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/trace_io_test.cpp.o.d"
  "energy_tests"
  "energy_tests.pdb"
  "energy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hw_tests.dir/hw/accelerator_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/accelerator_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/calibration_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/calibration_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/custom_hardware_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/custom_hardware_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/msp430_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/msp430_test.cpp.o.d"
  "hw_tests"
  "hw_tests.pdb"
  "hw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

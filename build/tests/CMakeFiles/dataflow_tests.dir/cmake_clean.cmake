file(REMOVE_RECURSE
  "CMakeFiles/dataflow_tests.dir/dataflow/cost_model_property_test.cpp.o"
  "CMakeFiles/dataflow_tests.dir/dataflow/cost_model_property_test.cpp.o.d"
  "CMakeFiles/dataflow_tests.dir/dataflow/cost_model_test.cpp.o"
  "CMakeFiles/dataflow_tests.dir/dataflow/cost_model_test.cpp.o.d"
  "CMakeFiles/dataflow_tests.dir/dataflow/mapping_test.cpp.o"
  "CMakeFiles/dataflow_tests.dir/dataflow/mapping_test.cpp.o.d"
  "CMakeFiles/dataflow_tests.dir/dataflow/tiling_test.cpp.o"
  "CMakeFiles/dataflow_tests.dir/dataflow/tiling_test.cpp.o.d"
  "dataflow_tests"
  "dataflow_tests.pdb"
  "dataflow_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

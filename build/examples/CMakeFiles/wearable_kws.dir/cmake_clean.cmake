file(REMOVE_RECURSE
  "CMakeFiles/wearable_kws.dir/wearable_kws.cpp.o"
  "CMakeFiles/wearable_kws.dir/wearable_kws.cpp.o.d"
  "wearable_kws"
  "wearable_kws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearable_kws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wearable_kws.
# This may be replaced when dependencies are built.

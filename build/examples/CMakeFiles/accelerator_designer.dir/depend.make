# Empty dependencies file for accelerator_designer.
# This may be replaced when dependencies are built.

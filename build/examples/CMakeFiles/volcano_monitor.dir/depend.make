# Empty dependencies file for volcano_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/volcano_monitor.dir/volcano_monitor.cpp.o"
  "CMakeFiles/volcano_monitor.dir/volcano_monitor.cpp.o.d"
  "volcano_monitor"
  "volcano_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_cli.dir/chrysalis_cli.cpp.o"
  "CMakeFiles/chrysalis_cli.dir/chrysalis_cli.cpp.o.d"
  "chrysalis_cli"
  "chrysalis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

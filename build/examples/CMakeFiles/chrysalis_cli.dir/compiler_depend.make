# Empty compiler generated dependencies file for chrysalis_cli.
# This may be replaced when dependencies are built.
